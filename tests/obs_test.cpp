// Observability layer suite (DESIGN.md "Observability"): span nesting
// and worker-thread attachment, counter / histogram semantics, the
// determinism contract (counter deltas byte-identical across thread
// counts), the JSON run report round-tripped through the bundled parser
// and the chrome://tracing export's structural validity.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "flow/report.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace streak {
namespace {

/// Restores the global detail gate (tests toggle it at will).
class DetailGuard {
public:
    DetailGuard() : saved_(obs::detailEnabled()) {}
    ~DetailGuard() { obs::setDetailEnabled(saved_); }

private:
    bool saved_;
};

const obs::Span* spanNamed(const obs::Trace& trace, std::string_view name) {
    return obs::findSpan(trace, name);
}

TEST(Tracer, NestsSpansAndRestoresCurrent) {
    obs::Tracer& tracer = obs::defaultSession().tracer();
    tracer.reset();
    EXPECT_EQ(tracer.currentSpan(), -1);
    {
        obs::SpanScope outer("test/outer");
        EXPECT_EQ(tracer.currentSpan(), outer.id());
        {
            obs::SpanScope inner("test/inner");
            EXPECT_EQ(tracer.currentSpan(), inner.id());
        }
        EXPECT_EQ(tracer.currentSpan(), outer.id());
        obs::SpanScope sibling("test/sibling");
    }
    EXPECT_EQ(tracer.currentSpan(), -1);

    const obs::Trace trace = tracer.snapshot();
    ASSERT_EQ(trace.size(), 3u);
    const obs::Span* outer = spanNamed(trace, "test/outer");
    const obs::Span* inner = spanNamed(trace, "test/inner");
    const obs::Span* sibling = spanNamed(trace, "test/sibling");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(sibling, nullptr);
    EXPECT_EQ(outer->parent, -1);
    EXPECT_EQ(inner->parent, 0);    // outer was recorded first
    EXPECT_EQ(sibling->parent, 0);  // sibling of inner, child of outer
    EXPECT_GE(inner->startSeconds, outer->startSeconds);
    EXPECT_GE(inner->seconds(), 0.0);
    EXPECT_LE(inner->endSeconds, outer->endSeconds);
}

TEST(Tracer, SpanArgsAndQueries) {
    obs::Tracer& tracer = obs::defaultSession().tracer();
    tracer.reset();
    {
        obs::SpanScope span("test/annotated");
        span.addArg("tasks", 42.0);
    }
    const obs::Trace trace = tracer.snapshot();
    EXPECT_EQ(obs::spanArg(trace, "test/annotated", "tasks", -1.0), 42.0);
    EXPECT_EQ(obs::spanArg(trace, "test/annotated", "absent", -1.0), -1.0);
    EXPECT_EQ(obs::spanArg(trace, "test/missing", "tasks", -1.0), -1.0);
    EXPECT_GE(obs::spanSeconds(trace, "test/annotated"), 0.0);
    EXPECT_EQ(obs::spanSeconds(trace, "test/missing"), 0.0);
}

TEST(Tracer, GatedSpanScopeIsNotRecorded) {
    obs::Tracer& tracer = obs::defaultSession().tracer();
    tracer.reset();
    {
        const obs::SpanScope gated("test/skipped", /*record=*/false);
        EXPECT_EQ(gated.id(), -1);
        EXPECT_EQ(tracer.currentSpan(), -1);
    }
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, WorkerSpansAttachUnderRegionSpan) {
    DetailGuard guard;
    obs::setDetailEnabled(true);
    obs::Tracer& tracer = obs::defaultSession().tracer();
    tracer.reset();
    {
        obs::SpanScope owner("test/owner");
        parallel::ThreadPool pool(4);
        pool.parallelFor(16, [](int) {
            STREAK_SPAN("test/task");
            // A little work so multiple workers participate.
            volatile double x = 0.0;
            for (int k = 0; k < 1000; ++k) x = x + k;
        });
    }
    const obs::Trace trace = tracer.snapshot();

    const obs::Span* region = spanNamed(trace, "parallel/region");
    ASSERT_NE(region, nullptr);
    const obs::Span* owner = spanNamed(trace, "test/owner");
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(owner->parent, -1);
    EXPECT_EQ(region->parent, 0);  // the owner span was recorded first

    int taskSpans = 0;
    for (const obs::Span& span : trace) {
        if (span.name != "test/task") continue;
        ++taskSpans;
        // Every task span nests under the region span, whichever thread
        // (track 0 = owner, 1.. = workers) ran the task.
        ASSERT_GE(span.parent, 0);
        EXPECT_EQ(trace[static_cast<size_t>(span.parent)].name,
                  "parallel/region");
        EXPECT_GE(span.thread, 0);
        EXPECT_LE(span.thread, 3);
    }
    EXPECT_EQ(taskSpans, 16);
}

TEST(Counters, RegistryAccumulatesAndSnapshotsDelta) {
    obs::Counter& c = obs::counter("test/obs.counter_a");
    const obs::Snapshot before = obs::snapshotMetrics();
    c.add(5);
    c.add(2);
    const obs::Snapshot delta = obs::snapshotMetrics().minus(before);
    EXPECT_EQ(delta.counters.at("test/obs.counter_a"), 7);
    // A second handle for the same name hits the same counter.
    obs::counter("test/obs.counter_a").add(1);
    EXPECT_EQ(c.value() - before.counters.at("test/obs.counter_a"), 8);
}

TEST(Counters, HistogramBucketsAndOverflow) {
    obs::Histogram& h = obs::histogram("test/obs.hist", {10, 20, 30});
    const obs::Snapshot before = obs::snapshotMetrics();
    for (const long long v : {5, 10, 11, 25, 31, 1000}) h.record(v);
    const obs::Snapshot delta = obs::snapshotMetrics().minus(before);
    const auto& hv = delta.histograms.at("test/obs.hist");
    ASSERT_EQ(hv.upperBounds, (std::vector<long long>{10, 20, 30}));
    // <=10: {5, 10}; <=20: {11}; <=30: {25}; overflow: {31, 1000}.
    ASSERT_EQ(hv.counts.size(), 4u);
    EXPECT_EQ(hv.counts[0], 2);
    EXPECT_EQ(hv.counts[1], 1);
    EXPECT_EQ(hv.counts[2], 1);
    EXPECT_EQ(hv.counts[3], 2);
    EXPECT_EQ(hv.total, 6);
    EXPECT_EQ(hv.sum, 5 + 10 + 11 + 25 + 31 + 1000);
}

/// Small two-pin design shared by the flow-level tests.
Design smallDesign() {
    gen::SuiteSpec spec = gen::synthSpec(1);
    spec.numGroups = 6;
    spec.gridWidth = 48;
    spec.gridHeight = 48;
    return gen::generate(spec);
}

StreakResult observedRun(const Design& d, int threads) {
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = threads;
    opts.observer = [](const StreakObservation&) {};
    return runStreak(d, opts).value();
}

TEST(FlowObservability, CountersAreThreadCountInvariant) {
    const Design d = smallDesign();
    const StreakResult base = observedRun(d, 1);
    EXPECT_FALSE(base.counters.counters.empty());
    EXPECT_GT(base.counters.counters.at("solve/pd.iterations"), 0);
    ASSERT_TRUE(base.counters.histograms.contains("route/edge.utilization_pct"));

    for (const int threads : {2, 8}) {
        const StreakResult r = observedRun(d, threads);
        EXPECT_EQ(r.counters.counters, base.counters.counters)
            << threads << " threads changed a counter value";
        for (const auto& [name, hv] : base.counters.histograms) {
            const auto& got = r.counters.histograms.at(name);
            EXPECT_EQ(got.counts, hv.counts) << name;
            EXPECT_EQ(got.total, hv.total) << name;
            EXPECT_EQ(got.sum, hv.sum) << name;
        }
    }
}

TEST(FlowObservability, ObserverSeesTraceAndStageSpansBackAccessors) {
    const Design d = smallDesign();
    bool called = false;
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = 1;
    opts.observer = [&](const StreakObservation& o) {
        called = true;
        EXPECT_NE(obs::findSpan(o.trace, stage::kRun), nullptr);
        EXPECT_FALSE(o.counters.counters.empty());
    };
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_TRUE(called);

    // The derived accessors read the same span tree the observer saw.
    EXPECT_GT(r.totalSeconds(), 0.0);
    EXPECT_GT(r.buildSeconds(), 0.0);
    EXPECT_GE(r.totalSeconds(), r.buildSeconds() + r.solveSeconds() +
                                    r.distanceSeconds() + r.postSeconds());
    EXPECT_EQ(r.buildParallel().threads, 1);
    EXPECT_GT(r.buildParallel().regions, 0);
}

TEST(FlowObservability, DetailStaysOffWithoutObserver) {
    DetailGuard guard;
    obs::setDetailEnabled(false);
    const Design d = smallDesign();
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = 1;
    const StreakResult r = runStreak(d, opts).value();
    // Stage spans always record; hot-path counters stay silent.
    EXPECT_GT(r.totalSeconds(), 0.0);
    EXPECT_FALSE(r.counters.counters.contains("solve/pd.iterations"));
    EXPECT_FALSE(obs::detailEnabled());
}

TEST(Report, RoundTripsThroughParser) {
    const Design d = smallDesign();
    StreakOptions opts;
    opts.postOptimize = true;
    opts.threads = 2;
    opts.observer = [](const StreakObservation&) {};
    const StreakResult r = runStreak(d, opts).value();

    std::ostringstream os;
    flow::writeRunReport(d, opts, r, os);
    std::string error;
    const obs::json::Value doc = obs::json::parse(os.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(doc.find("schema")->asString(), flow::kReportSchema);
    EXPECT_EQ(static_cast<int>(doc.find("schemaVersion")->asNumber()),
              flow::kReportSchemaVersion);
    EXPECT_EQ(doc.find("design")->find("name")->asString(), d.name);
    EXPECT_EQ(static_cast<int>(doc.find("threadsUsed")->asNumber()), 2);
    EXPECT_EQ(doc.find("metrics")->find("wirelength")->asNumber(),
              static_cast<double>(r.metrics.wirelength));

    // Counters round-trip exactly (they are integers).
    const obs::json::Value* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    for (const auto& [name, value] : r.counters.counters) {
        const obs::json::Value* v = counters->find(name);
        ASSERT_NE(v, nullptr) << name;
        EXPECT_EQ(static_cast<long long>(v->asNumber()), value) << name;
    }

    // The span tree starts at flow/run and its children carry the stage
    // RegionStats args the accessors derive from.
    const obs::json::Value* spans = doc.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_FALSE(spans->asArray().empty());
    const obs::json::Value& run = spans->asArray().front();
    EXPECT_EQ(run.find("name")->asString(), stage::kRun);
    bool sawBuild = false;
    for (const obs::json::Value& child : run.find("children")->asArray()) {
        if (child.find("name")->asString() == stage::kBuild) {
            sawBuild = true;
            const obs::json::Value* args = child.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(static_cast<int>(args->find("threads")->asNumber()), 2);
        }
    }
    EXPECT_TRUE(sawBuild);
}

TEST(ChromeTrace, EmitsBalancedDurationEvents) {
    const Design d = smallDesign();
    const StreakResult r = observedRun(d, 4);

    std::ostringstream os;
    obs::writeChromeTrace(r.trace, os);
    std::string error;
    const obs::json::Value doc = obs::json::parse(os.str(), &error);
    ASSERT_TRUE(error.empty()) << error;

    const obs::json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // Bracket check per (pid, tid): B pushes, E must match the top name.
    std::map<std::pair<int, int>, std::vector<std::string>> open;
    int durations = 0;
    for (const obs::json::Value& ev : events->asArray()) {
        const std::string ph = ev.find("ph")->asString();
        if (ph == "M") continue;
        ASSERT_TRUE(ph == "B" || ph == "E") << ph;
        ++durations;
        const std::pair<int, int> track{
            static_cast<int>(ev.find("pid")->asNumber()),
            static_cast<int>(ev.find("tid")->asNumber())};
        const std::string name = ev.find("name")->asString();
        if (ph == "B") {
            open[track].push_back(name);
        } else {
            ASSERT_FALSE(open[track].empty());
            EXPECT_EQ(open[track].back(), name);
            open[track].pop_back();
        }
    }
    EXPECT_GT(durations, 0);
    for (const auto& [track, stack] : open) EXPECT_TRUE(stack.empty());
}

TEST(Json, ParsesAndRejects) {
    std::string error;
    const obs::json::Value ok = obs::json::parse(
        R"({"a": [1, 2.5, -3e2], "b": {"c": "x\n\"y\""}, "d": true, "e": null})",
        &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(ok.find("a")->asArray()[2].asNumber(), -300.0);
    EXPECT_EQ(ok.find("b")->find("c")->asString(), "x\n\"y\"");
    EXPECT_TRUE(ok.find("d")->asBool());
    EXPECT_TRUE(ok.find("e")->isNull());

    for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "1 2", ""}) {
        error.clear();
        const obs::json::Value v = obs::json::parse(bad, &error);
        EXPECT_FALSE(error.empty()) << "accepted: " << bad;
    }

    // Round-trip stability: dump -> parse -> dump is a fixed point.
    const std::string once = ok.dump(2);
    const obs::json::Value again = obs::json::parse(once, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(again.dump(2), once);
}

}  // namespace
}  // namespace streak
