#include "core/candidate.hpp"

#include <gtest/gtest.h>

#include "core/identify.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

Design busDesign(int width = 4, int cap = 10) {
    return testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}, {12, 10}}, width, 0, 1)},
        32, 32, 4, cap);
}

TEST(GenerateCandidates, NonEmptyForRoutableObject) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    ASSERT_EQ(objects.size(), 1u);
    StreakOptions opts;
    const auto cands = generateCandidates(d, objects[0], opts);
    ASSERT_FALSE(cands.empty());
}

TEST(GenerateCandidates, SortedByCost) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    const auto cands = generateCandidates(d, objects[0], StreakOptions{});
    for (size_t i = 1; i < cands.size(); ++i) {
        EXPECT_LE(cands[i - 1].cost, cands[i].cost);
    }
}

TEST(GenerateCandidates, LayerDirectionsMatchGrid) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    for (const RouteCandidate& c :
         generateCandidates(d, objects[0], StreakOptions{})) {
        EXPECT_EQ(d.grid.layerDir(c.hLayer), grid::Dir::Horizontal);
        EXPECT_EQ(d.grid.layerDir(c.vLayer), grid::Dir::Vertical);
    }
}

TEST(GenerateCandidates, EdgeUseMatchesBitTopologies) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    const auto cands = generateCandidates(d, objects[0], StreakOptions{});
    ASSERT_FALSE(cands.empty());
    const RouteCandidate& c = cands.front();
    // Total demand equals total wirelength over bits (each unit edge of a
    // bit adds one track).
    long totalUse = 0;
    for (const auto& [edge, amount] : c.edgeUse) totalUse += amount;
    EXPECT_EQ(totalUse, c.wirelength2d);
    // Sorted by edge id.
    for (size_t i = 1; i < c.edgeUse.size(); ++i) {
        EXPECT_LT(c.edgeUse[i - 1].first, c.edgeUse[i].first);
    }
}

TEST(GenerateCandidates, ParallelBitsStackDemand) {
    // A 4-bit bus whose bits share no edges: per-edge demand stays 1.
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    const auto cands = generateCandidates(d, objects[0], StreakOptions{});
    for (const auto& [edge, amount] : cands.front().edgeUse) {
        EXPECT_LE(amount, 4);
        EXPECT_GE(amount, 1);
    }
}

TEST(GenerateCandidates, InfeasibleWhenCapacityTiny) {
    // Capacity 0 grid: no candidate can fit.
    Design d = busDesign(4, 10);
    for (int e = 0; e < d.grid.numEdges(); ++e) d.grid.setCapacity(e, 0);
    const auto objects = identifyObjects(d);
    const auto cands = generateCandidates(d, objects[0], StreakOptions{});
    EXPECT_TRUE(cands.empty());
}

TEST(GenerateCandidates, MaxLayerPairsRespected) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    StreakOptions opts;
    opts.maxLayerPairs = 1;
    opts.backbone.maxBackbones = 2;
    const auto cands = generateCandidates(d, objects[0], opts);
    EXPECT_LE(cands.size(), 2u);
    std::set<std::pair<int, int>> pairs;
    for (const RouteCandidate& c : cands) pairs.insert({c.hLayer, c.vLayer});
    EXPECT_LE(pairs.size(), 1u);
}

TEST(GenerateCandidates, AdjacentLayersPreferredInCost) {
    const Design d = busDesign();
    const auto objects = identifyObjects(d);
    StreakOptions opts;
    opts.maxLayerPairs = 4;
    opts.layerAdjacencyWeight = 100.0;  // make the gap dominate
    const auto cands = generateCandidates(d, objects[0], opts);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(std::abs(cands.front().hLayer - cands.front().vLayer), 1);
}

TEST(ComputeEdgeUse, SingleTopology) {
    const Design d = busDesign();
    steiner::Topology t({{2, 2}, {6, 2}}, 0);
    t.addSegment({{2, 2}, {6, 2}});
    const auto use = computeEdgeUse(d.grid, t, 0, 1);
    EXPECT_EQ(use.size(), 4u);
    for (const auto& [edge, amount] : use) {
        EXPECT_EQ(amount, 1);
        EXPECT_EQ(d.grid.edgeCoord(edge).layer, 0);
    }
}

}  // namespace
}  // namespace streak
