#include "io/svg.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pd_solver.hpp"
#include "test_util.hpp"

namespace streak::io {
namespace {

RoutedDesign routedFixture(const Design&, const RoutingProblem& prob) {
    return materialize(prob, solvePrimalDual(prob).solution);
}

TEST(Svg, WellFormedDocument) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 3, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = routedFixture(d, prob);
    std::stringstream ss;
    writeSvg(routed, ss);
    const std::string svg = ss.str();
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, OneLinePerUnitEdgePlusPins) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 2, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = routedFixture(d, prob);
    std::stringstream ss;
    writeSvg(routed, ss);
    const std::string svg = ss.str();
    size_t lines = 0;
    for (size_t pos = 0; (pos = svg.find("<line", pos)) != std::string::npos;
         ++pos) {
        ++lines;
    }
    size_t circles = 0;
    for (size_t pos = 0;
         (pos = svg.find("<circle", pos)) != std::string::npos; ++pos) {
        ++circles;
    }
    long wl = 0;
    size_t pins = 0;
    for (const RoutedBit& b : routed.bits) {
        wl += b.topo.wirelength();
        pins += b.topo.pins().size();
    }
    EXPECT_EQ(lines, static_cast<size_t>(wl));
    EXPECT_EQ(circles, pins);
}

TEST(Svg, GridLinesOptional) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 2, 0, 1)});
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = routedFixture(d, prob);
    SvgOptions opts;
    opts.drawGridLines = true;
    std::stringstream withLines, withoutLines;
    writeSvg(routed, withLines, opts);
    opts.drawGridLines = false;
    writeSvg(routed, withoutLines, opts);
    EXPECT_GT(withLines.str().size(), withoutLines.str().size());
}

TEST(Svg, BlockagesShaded) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 2, 0, 1)});
    d.grid.addBlockage({{5, 8}, {8, 11}}, 0, 0);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const RoutedDesign routed = routedFixture(d, prob);
    std::stringstream ss;
    writeSvg(routed, ss);
    EXPECT_NE(ss.str().find("#eeeeee"), std::string::npos);
}

TEST(Svg, EmptyRoutedDesign) {
    const Design d = testutil::makeDesign({});
    RoutedDesign empty(d.grid);
    std::stringstream ss;
    writeSvg(empty, ss);
    EXPECT_NE(ss.str().find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace streak::io
