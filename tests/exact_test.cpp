#include "steiner/exact.hpp"

#include <gtest/gtest.h>

#include <random>

#include "steiner/rsmt.hpp"

namespace streak::steiner {
namespace {

using geom::Point;

TEST(ExactRsmt, TrivialCases) {
    EXPECT_EQ(exactRsmtLength({}), 0);
    EXPECT_EQ(exactRsmtLength({{3, 3}}), 0);
    EXPECT_EQ(exactRsmtLength({{0, 0}, {4, 5}}), 9);
}

TEST(ExactRsmt, CrossNeedsCenterSteinerPoint) {
    // Plus-sign terminals: RSMT = 8 with the center point, MST = 12.
    const std::vector<Point> pins{{0, 2}, {4, 2}, {2, 0}, {2, 4}};
    EXPECT_EQ(mstLength(pins), 12);
    EXPECT_EQ(exactRsmtLength(pins), 8);
}

TEST(ExactRsmt, UnitSquare) {
    // RSMT of the unit square = 3 (no Steiner point helps).
    EXPECT_EQ(exactRsmtLength({{0, 0}, {1, 0}, {0, 1}, {1, 1}}), 3);
}

TEST(ExactRsmt, KnownFivePinInstance) {
    // Staircase: collinear-ish terminals where one trunk serves all.
    const std::vector<Point> pins{{0, 0}, {2, 0}, {4, 0}, {6, 0}, {3, 3}};
    EXPECT_EQ(exactRsmtLength(pins), 9);  // trunk 6 + branch 3
}

class ExactOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactOracleTest, HeuristicWithinHwangBoundAndNeverBelowExact) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31u + 7u);
    std::uniform_int_distribution<int> coord(0, 12);
    std::uniform_int_distribution<int> count(3, 5);
    std::vector<Point> pins;
    const int n = count(rng);
    for (int i = 0; i < n; ++i) pins.push_back({coord(rng), coord(rng)});

    const long exact = exactRsmtLength(pins);
    const auto topos = enumerateTopologies(pins, 0);
    ASSERT_FALSE(topos.empty());
    // The heuristic tree is a real Steiner tree: never shorter than the
    // exact optimum, never longer than the RMST (its starting point).
    EXPECT_GE(topos.front().wirelength(), exact);
    EXPECT_LE(topos.front().wirelength(), mstLength(pins));
    // Exact obeys the Hwang bound versus the MST.
    EXPECT_GE(3L * exact, 2L * mstLength(pins));
}

TEST_P(ExactOracleTest, HeuristicUsuallyTight) {
    // On small instances BI1S + rectification should match the exact
    // optimum most of the time; assert a loose per-instance bound (10%).
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 101u + 13u);
    std::uniform_int_distribution<int> coord(0, 10);
    std::vector<Point> pins;
    for (int i = 0; i < 4; ++i) pins.push_back({coord(rng), coord(rng)});
    const long exact = exactRsmtLength(pins);
    const auto topos = enumerateTopologies(pins, 0);
    ASSERT_FALSE(topos.empty());
    EXPECT_LE(topos.front().wirelength(), exact + std::max(2L, exact / 10));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactOracleTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace streak::steiner
