#include "parallel/thread_pool.hpp"

#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace streak::parallel {
namespace {

TEST(ResolveThreads, PositivePassesThrough) {
    EXPECT_EQ(resolveThreads(1), 1);
    EXPECT_EQ(resolveThreads(5), 5);
}

TEST(ResolveThreads, NonPositiveMeansHardware) {
    EXPECT_EQ(resolveThreads(0), hardwareThreads());
    EXPECT_EQ(resolveThreads(-3), hardwareThreads());
    EXPECT_GE(hardwareThreads(), 1);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        constexpr int kN = 100;
        std::vector<std::atomic<int>> visits(kN);
        pool.parallelFor(kN, [&](int i) {
            visits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingleRegions) {
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(-2, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](int i) { calls += i + 1; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapCollectsInIndexOrder) {
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const std::vector<int> squares =
            pool.parallelMap<int>(50, [](int i) { return i * i; });
        ASSERT_EQ(squares.size(), 50u);
        for (int i = 0; i < 50; ++i) {
            EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
        }
    }
}

TEST(ThreadPool, OrderedReduceFoldsInStrictIndexOrder) {
    // The fold concatenates, so any reordering would change the string.
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        std::string folded;
        pool.orderedReduce<std::string>(
            26, [](int i) { return std::string(1, static_cast<char>('a' + i)); },
            [&](int, std::string&& s) { folded += s; });
        EXPECT_EQ(folded, "abcdefghijklmnopqrstuvwxyz");
    }
}

TEST(ThreadPool, ReusableAcrossRegions) {
    ThreadPool pool(4);
    long total = 0;
    for (int round = 0; round < 10; ++round) {
        const std::vector<int> vals =
            pool.parallelMap<int>(20, [round](int i) { return round + i; });
        total += std::accumulate(vals.begin(), vals.end(), 0L);
    }
    // sum over rounds of (20*round + 0+1+...+19).
    EXPECT_EQ(total, 10L * 190 + 20L * 45);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        try {
            pool.parallelFor(64, [](int i) {
                if (i % 7 == 3) {  // first failing index is 3
                    throw std::runtime_error("task " + std::to_string(i));
                }
            });
            FAIL() << "expected the region to rethrow";
        } catch (const std::runtime_error& e) {
            // Later failing indices may or may not have thrown before the
            // fail-fast flag stopped them; the winner is always task 3,
            // possibly with a suppressed-failures note appended.
            const std::string what = e.what();
            EXPECT_EQ(what.rfind("task 3", 0), 0u) << what;
            EXPECT_EQ(what.find("task 1"), std::string::npos) << what;
        }
    }
}

TEST(ThreadPool, SuppressedFailuresAreCountedAndNoted) {
    // Two tasks on two threads, each waiting for the other before
    // throwing: both failures are guaranteed recorded, so exactly one is
    // suppressed — deterministically, unlike the fail-fast race above.
    ThreadPool pool(2);
    const long long before =
        obs::counter("parallel/exceptions_suppressed").value();
    std::atomic<int> arrived{0};
    try {
        pool.parallelFor(2, [&](int i) {
            arrived.fetch_add(1);
            // Spin: both tasks are mid-flight before either throws. The
            // pool owner is pinned here in task 0, so the worker thread
            // must claim task 1 — the rendezvous cannot deadlock.
            while (arrived.load() < 2) std::this_thread::yield();
            throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "expected the region to rethrow";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_EQ(what.rfind("task 0", 0), 0u) << what;
        EXPECT_NE(what.find("[+1 suppressed task failure(s)"),
                  std::string::npos)
            << what;
    }
    EXPECT_EQ(obs::counter("parallel/exceptions_suppressed").value(),
              before + 1);
}

TEST(ThreadPool, PoolSurvivesAFailedRegion) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(8, [](int) { throw std::runtime_error("boom"); }),
        std::runtime_error);
    const std::vector<int> ok =
        pool.parallelMap<int>(8, [](int i) { return i; });
    ASSERT_EQ(ok.size(), 8u);
    EXPECT_EQ(ok[7], 7);
}

TEST(ThreadPool, StatsCountRegionsAndTasks) {
    ThreadPool pool(2);
    pool.parallelFor(10, [](int) {});
    pool.parallelFor(5, [](int) {});
    const RegionStats& s = pool.stats();
    EXPECT_EQ(s.threads, 2);
    EXPECT_EQ(s.regions, 2);
    EXPECT_EQ(s.tasks, 15);
    EXPECT_GE(s.wallSeconds, 0.0);
    EXPECT_GE(s.taskSeconds, 0.0);
}

TEST(RegionStats, MergeTakesMaxThreadsAndSums) {
    RegionStats a;
    a.threads = 2;
    a.regions = 1;
    a.tasks = 10;
    a.wallSeconds = 1.0;
    a.taskSeconds = 2.0;
    RegionStats b;
    b.threads = 4;
    b.regions = 3;
    b.tasks = 5;
    b.wallSeconds = 0.5;
    b.taskSeconds = 1.0;
    a.merge(b);
    EXPECT_EQ(a.threads, 4);
    EXPECT_EQ(a.regions, 4);
    EXPECT_EQ(a.tasks, 15);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 1.5);
    EXPECT_DOUBLE_EQ(a.taskSeconds, 3.0);
    EXPECT_DOUBLE_EQ(a.speedupEstimate(), 2.0);
}

TEST(RegionStats, SpeedupDefaultsToOneWithoutWallTime) {
    const RegionStats s;
    EXPECT_DOUBLE_EQ(s.speedupEstimate(), 1.0);
}

}  // namespace
}  // namespace streak::parallel
