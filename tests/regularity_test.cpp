#include "core/regularity.hpp"

#include <gtest/gtest.h>

namespace streak {
namespace {

using geom::Point;
using steiner::Topology;

Topology lTopo(Point driver, Point sink, bool horizontalFirst) {
    Topology t({driver, sink}, 0);
    const Point corner = horizontalFirst ? Point{sink.x, driver.y}
                                         : Point{driver.x, sink.y};
    t.addLShape(driver, sink, corner);
    return t;
}

TEST(RegularityRatio, IdenticalShapesScoreOne) {
    const Topology a = lTopo({0, 0}, {6, 4}, true);
    const Topology b = lTopo({0, 10}, {6, 14}, true);
    EXPECT_DOUBLE_EQ(regularityRatio(a, b), 1.0);
}

TEST(RegularityRatio, SymmetricInArguments) {
    const Topology a = lTopo({0, 0}, {6, 4}, true);
    const Topology b = lTopo({0, 10}, {9, 12}, false);
    EXPECT_DOUBLE_EQ(regularityRatio(a, b), regularityRatio(b, a));
}

TEST(RegularityRatio, BoundedByOne) {
    const Topology a = lTopo({0, 0}, {6, 4}, true);
    const Topology b = lTopo({2, 0}, {9, 9}, false);
    const double r = regularityRatio(a, b);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
}

TEST(RegularityRatio, StraightVsLShareTrunk) {
    // Fig. 3(a): a straight +x route and an L route; the bend maps to the
    // sink, the shared horizontal trunk matches -> ratio 1.
    Topology straight({{0, 0}, {8, 0}}, 0);
    straight.addSegment({{0, 0}, {8, 0}});
    const Topology l = lTopo({0, 4}, {8, 9}, true);
    EXPECT_DOUBLE_EQ(regularityRatio(straight, l), 1.0);
}

TEST(RegularityRatio, OppositeDirectionsShareNothing) {
    Topology right({{0, 0}, {8, 0}}, 0);
    right.addSegment({{0, 0}, {8, 0}});
    Topology up({{0, 0}, {0, 8}}, 0);
    up.addSegment({{0, 0}, {0, 8}});
    EXPECT_LT(regularityRatio(right, up), 1.0);
}

TEST(RegularityRatio, SelfRatioIsOne) {
    const Topology a = lTopo({3, 3}, {9, 8}, false);
    EXPECT_DOUBLE_EQ(regularityRatio(a, a), 1.0);
}

TEST(RegularityRatio, NoRCsIsTriviallyRegular) {
    const Topology a({{2, 2}}, 0);
    const Topology b = lTopo({0, 0}, {4, 4}, true);
    EXPECT_DOUBLE_EQ(regularityRatio(a, b), 1.0);
}

TEST(GroupRegularity, SingleObjectIsOne) {
    const Topology a = lTopo({0, 0}, {5, 5}, true);
    EXPECT_DOUBLE_EQ(groupRegularity({&a}), 1.0);
    EXPECT_DOUBLE_EQ(groupRegularity({}), 1.0);
}

TEST(GroupRegularity, AveragesPairs) {
    const Topology a = lTopo({0, 0}, {6, 4}, true);
    const Topology b = lTopo({0, 10}, {6, 14}, true);   // same shape as a
    Topology c({{0, 20}, {0, 28}}, 0);                  // vertical straight
    c.addSegment({{0, 20}, {0, 28}});
    const double rAB = regularityRatio(a, b);
    const double rAC = regularityRatio(a, c);
    const double rBC = regularityRatio(b, c);
    const double expected = (rAB + rAC + rBC) / 3.0;
    EXPECT_NEAR(groupRegularity({&a, &b, &c}), expected, 1e-12);
    EXPECT_DOUBLE_EQ(rAB, 1.0);
}

}  // namespace
}  // namespace streak
