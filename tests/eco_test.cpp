// Differential equivalence harness for incremental ECO re-routing
// (DESIGN.md "Incremental ECO", check.sh stage 10).
//
// The headline property: for every delta kind, over the shrunk synth
// suites, at thread counts 1/2/8, an incremental re-route of the
// affected-group closure is byte-identical — metrics, per-edge usage,
// topologies, cluster partitions, distance flags, the unrouted set — to
// a from-scratch re-route of the mutated design. Plus checkpoint
// round-trips, closure precision/transitivity units, delta-script
// parsing and the carried-groups speedup claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "eco/checkpoint.hpp"
#include "eco/delta.hpp"
#include "eco/eco.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "geom/rect.hpp"
#include "obs/json.hpp"
#include "robust/error.hpp"

namespace streak {
namespace {

using eco::Delta;
using eco::DeltaKind;

/// The chaos_test shrink: small enough that the suites x kinds x threads
/// product runs in seconds, structured enough to exercise clustering,
/// refinement and blockages.
gen::SuiteSpec shrunkSpec(int suite) {
    gen::SuiteSpec spec = gen::synthSpec(suite);
    spec.numGroups = 3;
    spec.gridWidth = 32;
    spec.gridHeight = 32;
    spec.numBlockages = spec.numBlockages < 2 ? spec.numBlockages : 2;
    return spec;
}

StreakOptions ecoOptions(int threads) {
    StreakOptions opts;
    opts.postOptimize = true;
    opts.maxDetourShift = 3;  // keep refinement windows tight
    opts.threads = threads;
    return opts;
}

Delta movePin(int group, int bit, int pin, geom::Point to) {
    Delta d;
    d.kind = DeltaKind::MovePin;
    d.group = group;
    d.bit = bit;
    d.pin = pin;
    d.to = to;
    return d;
}

Delta rectDelta(DeltaKind kind, geom::Rect area, int layer, int capacity) {
    Delta d;
    d.kind = kind;
    d.area = area;
    d.layer = layer;
    d.capacity = capacity;
    return d;
}

/// One representative delta per kind, derived from the design so every
/// suite gets valid coordinates. The rect deltas sit next to group 0's
/// first pin so they actually intersect a window.
std::vector<Delta> oneDeltaPerKind(const Design& d) {
    const geom::Point p = d.groups[0].bits[0].pins[0];
    const geom::Point q{p.x + 1 < d.grid.width() ? p.x + 1 : p.x - 1, p.y};
    const geom::Rect near{{p.x > 0 ? p.x - 1 : 0, p.y > 0 ? p.y - 1 : 0},
                          {q.x > p.x ? q.x : p.x, p.y}};
    const int cap = d.grid.defaultCapacity();
    return {
        movePin(0, 0, 0, q),
        rectDelta(DeltaKind::AddBlockage, near, 0, 1),
        rectDelta(DeltaKind::RemoveBlockage, near, 0, 0),
        rectDelta(DeltaKind::ResizeCapacity, near, 1, cap > 2 ? cap - 2 : 1),
    };
}

/// Four signal groups on a corridor: A-B-C chain-overlap through shared
/// window columns, D is spatially isolated. With post optimization off
/// the windows are exactly the pin bounding boxes.
Design laneDesign() {
    Design d{"lanes", grid::RoutingGrid(40, 8, 2, 8), {}};
    const auto lane = [](std::string name, int x0) {
        SignalGroup g;
        g.name = std::move(name);
        for (int b = 0; b < 2; ++b) {
            Bit bit;
            bit.name = g.name + "_b" + std::to_string(b);
            bit.pins = {{x0, 2 + b}, {x0 + 4, 2 + b}};
            bit.driver = 0;
            g.bits.push_back(std::move(bit));
        }
        return g;
    };
    d.groups = {lane("A", 2), lane("B", 6), lane("C", 10), lane("D", 20)};
    return d;
}

// ---------------------------------------------------------------- closure

TEST(EcoClosure, DeltaOutsideEveryWindowInvalidatesNothing) {
    const Design before = laneDesign();
    StreakOptions opts;  // post off: windows are the pin bboxes
    const Delta d =
        rectDelta(DeltaKind::AddBlockage, {{30, 2}, {33, 4}}, 0, 1);
    Design after = laneDesign();
    eco::applyDelta(&after, d);
    EXPECT_TRUE(eco::affectedGroups(before, after, opts, {d}).empty());
}

TEST(EcoClosure, OverlappingWindowsPropagateTransitively) {
    const Design before = laneDesign();
    StreakOptions opts;
    // Dirty rect inside A's window only; B overlaps A at x=6, C overlaps
    // B at x=10 but touches neither A nor the dirty rect. The closure
    // must still pull C in (capacity pressure can ripple A -> B -> C),
    // while the isolated D stays carried.
    const Delta d = rectDelta(DeltaKind::AddBlockage, {{3, 3}, {4, 3}}, 0, 1);
    Design after = laneDesign();
    eco::applyDelta(&after, d);
    EXPECT_EQ(eco::affectedGroups(before, after, opts, {d}),
              (std::vector<int>{0, 1, 2}));
}

TEST(EcoClosure, IsolatedGroupClosesAlone) {
    const Design before = laneDesign();
    StreakOptions opts;
    const Delta d = movePin(3, 0, 1, {23, 2});
    Design after = laneDesign();
    eco::applyDelta(&after, d);
    EXPECT_EQ(eco::affectedGroups(before, after, opts, {d}),
              (std::vector<int>{3}));
}

TEST(EcoClosure, RefinementMarginWidensTheWindow) {
    const Design d = laneDesign();
    StreakOptions off;  // post off: margin 0
    StreakOptions on = ecoOptions(1);
    const geom::Rect tight = eco::groupWindow(d, 0, off);
    const geom::Rect wide = eco::groupWindow(d, 0, on);
    EXPECT_LE(wide.lo.x, tight.lo.x);
    EXPECT_GE(wide.hi.x, tight.hi.x);
    EXPECT_LT(wide.lo.y, tight.lo.y);  // margin > 0 for 2-pin bits
}

// ----------------------------------------------------------- round trips

TEST(EcoCheckpoint, WriteReadWriteIsByteIdentical) {
    const Design d = gen::generate(shrunkSpec(1));
    const StreakOptions opts = ecoOptions(2);
    const FlowResult flow = runStreak(d, opts);
    ASSERT_TRUE(flow.ok()) << flow.error().describe();
    const eco::Checkpoint ckpt = eco::makeCheckpoint(d, opts, flow.value());
    std::ostringstream first;
    eco::writeCheckpoint(ckpt, first);
    const eco::Checkpoint back = eco::readCheckpointBuffer(first.str());
    std::ostringstream second;
    eco::writeCheckpoint(back, second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(back.chosen, ckpt.chosen);
    EXPECT_EQ(back.bits.size(), ckpt.bits.size());
    EXPECT_EQ(back.usagePairs, ckpt.usagePairs);
    EXPECT_EQ(back.design->numNets(), d.numNets());
}

TEST(EcoDelta, ScriptParsesEveryDirective) {
    std::istringstream is(
        "# a comment\n"
        "MOVEPIN 0 1 0 12 7\n"
        "\n"
        "ADDBLOCKAGE 2 2 5 5 0 1\n"
        "REMOVEBLOCKAGE 2 2 5 5 0\n"
        "RESIZECAPACITY 1 1 3 3 1 9\n");
    const std::vector<Delta> deltas = eco::parseDeltaScript(is);
    ASSERT_EQ(deltas.size(), 4u);
    EXPECT_EQ(deltas[0].kind, DeltaKind::MovePin);
    EXPECT_EQ(deltas[0].to, (geom::Point{12, 7}));
    EXPECT_EQ(deltas[1].kind, DeltaKind::AddBlockage);
    EXPECT_EQ(deltas[2].kind, DeltaKind::RemoveBlockage);
    EXPECT_EQ(deltas[3].kind, DeltaKind::ResizeCapacity);
    EXPECT_EQ(deltas[3].capacity, 9);
}

TEST(EcoDelta, MalformedScriptLinesRaiseInvalidInput) {
    for (const char* text : {"MOVEPIN 0 0 0 12\n",       // missing arg
                             "MOVEPIN 0 0 0 12 7 9\n",   // trailing token
                             "TELEPORT 1 2 3\n",         // unknown verb
                             "ADDBLOCKAGE 2 2 5 5 0 x\n"}) {
        std::istringstream is(text);
        EXPECT_THROW((void)eco::parseDeltaScript(is),
                     robust::StreakException)
            << text;
    }
}

TEST(EcoDelta, OutOfRangeDeltaLeavesTheDesignUntouched) {
    Design d = laneDesign();
    const Delta bad = movePin(0, 0, 0, {99, 2});  // outside the grid
    EXPECT_THROW(eco::applyDelta(&d, bad), robust::StreakException);
    EXPECT_EQ(d.groups[0].bits[0].pins[0], (geom::Point{2, 2}));
}

// ------------------------------------------------- differential harness

class EcoEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EcoEquivalence, EveryDeltaKindMatchesColdAtEveryThreadCount) {
    const Design base = gen::generate(shrunkSpec(GetParam()));
    for (const int threads : {1, 2, 8}) {
        const StreakOptions opts = ecoOptions(threads);
        const FlowResult baseFlow = runStreak(base, opts);
        ASSERT_TRUE(baseFlow.ok()) << baseFlow.error().describe();
        const eco::Checkpoint ckpt =
            eco::makeCheckpoint(base, opts, baseFlow.value());
        for (const Delta& del : oneDeltaPerKind(base)) {
            SCOPED_TRACE(std::string(eco::deltaKindName(del.kind)) +
                         " at threads " + std::to_string(threads));
            const eco::EcoResult inc = eco::runEco(ckpt, {del});
            const FlowResult cold = runStreak(*inc.design, opts);
            ASSERT_TRUE(cold.ok()) << cold.error().describe();
            std::string diff;
            EXPECT_TRUE(eco::equivalent(inc, cold.value(), &diff)) << diff;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ShrunkSuites, EcoEquivalence,
                         ::testing::Range(1, 8));

TEST(EcoIncrementality, IsolatedMoveResolvesStrictlyFewerGroups) {
    // The speedup claim behind the whole subsystem: a single pin move in
    // an isolated group re-solves only that group's closure; everything
    // else is carried verbatim — and the stitched result still matches a
    // cold re-route bit for bit.
    const Design base = laneDesign();
    StreakOptions opts;  // post off: exact pin-bbox windows
    const FlowResult baseFlow = runStreak(base, opts);
    ASSERT_TRUE(baseFlow.ok());
    const eco::Checkpoint ckpt =
        eco::makeCheckpoint(base, opts, baseFlow.value());
    const eco::EcoResult inc =
        eco::runEco(ckpt, {movePin(3, 0, 1, {23, 2})});
    EXPECT_EQ(inc.resolvedGroups, (std::vector<int>{3}));
    EXPECT_EQ(inc.carriedGroups(), 3);
    EXPECT_LT(static_cast<int>(inc.resolvedGroups.size()), inc.totalGroups);
    const FlowResult cold = runStreak(*inc.design, opts);
    ASSERT_TRUE(cold.ok());
    std::string diff;
    EXPECT_TRUE(eco::equivalent(inc, cold.value(), &diff)) << diff;
}

TEST(EcoIncrementality, EmptyClosureCarriesEverythingVerbatim) {
    const Design base = laneDesign();
    StreakOptions opts;
    const FlowResult baseFlow = runStreak(base, opts);
    ASSERT_TRUE(baseFlow.ok());
    const eco::Checkpoint ckpt =
        eco::makeCheckpoint(base, opts, baseFlow.value());
    // A blockage in empty space changes no group's feasible region.
    const eco::EcoResult inc = eco::runEco(
        ckpt, {rectDelta(DeltaKind::AddBlockage, {{30, 2}, {33, 4}}, 0, 1)});
    EXPECT_TRUE(inc.resolvedGroups.empty());
    EXPECT_EQ(inc.carriedGroups(), 4);
    const FlowResult cold = runStreak(*inc.design, opts);
    ASSERT_TRUE(cold.ok());
    std::string diff;
    EXPECT_TRUE(eco::equivalent(inc, cold.value(), &diff)) << diff;
}

// ------------------------------------------------ randomized sequences

Delta randomDelta(std::mt19937& rng, const Design& d) {
    const auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    const int kind = pick(0, 3);
    if (kind == 0) {
        const int g = pick(0, d.numGroups() - 1);
        const int b = pick(0, d.groups[g].width() - 1);
        const Bit& bit = d.groups[g].bits[static_cast<size_t>(b)];
        const int p = pick(0, bit.numPins() - 1);
        const geom::Point old = bit.pins[static_cast<size_t>(p)];
        const auto clamp = [](int v, int hi) {
            return v < 0 ? 0 : (v > hi ? hi : v);
        };
        return movePin(g, b, p,
                       {clamp(old.x + pick(-2, 2), d.grid.width() - 1),
                        clamp(old.y + pick(-2, 2), d.grid.height() - 1)});
    }
    const int x = pick(0, d.grid.width() - 3);
    const int y = pick(0, d.grid.height() - 3);
    const geom::Rect area{{x, y}, {x + pick(0, 2), y + pick(0, 2)}};
    const int layer = pick(0, d.grid.numLayers() - 1);
    if (kind == 1) return rectDelta(DeltaKind::AddBlockage, area, layer, 1);
    if (kind == 2) return rectDelta(DeltaKind::RemoveBlockage, area, layer, 0);
    return rectDelta(DeltaKind::ResizeCapacity, area, layer,
                     pick(1, d.grid.defaultCapacity()));
}

TEST(EcoProperty, RandomDeltaSequencesChainAndMatchColdReroutes) {
    // Chained incrementality: checkpoint -> delta -> eco -> re-checkpoint
    // -> next delta, comparing against a cold re-route at every step.
    // Thread count rotates through the 1/2/8 ladder across steps.
    const int kThreads[] = {1, 2, 8};
    for (const unsigned seed : {11u, 23u}) {
        std::mt19937 rng(seed);
        const int suite = 1 + static_cast<int>(seed % 7u);
        SCOPED_TRACE("seed " + std::to_string(seed) + " suite " +
                     std::to_string(suite));
        const Design base = gen::generate(shrunkSpec(suite));
        const StreakOptions opts = ecoOptions(1);
        const FlowResult baseFlow = runStreak(base, opts);
        ASSERT_TRUE(baseFlow.ok());
        eco::Checkpoint ckpt =
            eco::makeCheckpoint(base, opts, baseFlow.value());
        for (int step = 0; step < 4; ++step) {
            SCOPED_TRACE("step " + std::to_string(step));
            const Delta del = randomDelta(rng, *ckpt.design);
            const int threads = kThreads[step % 3];
            const eco::EcoResult inc = eco::runEco(ckpt, {del}, threads);
            StreakOptions coldOpts = eco::semanticOptions(opts);
            coldOpts.threads = threads;
            const FlowResult cold = runStreak(*inc.design, coldOpts);
            ASSERT_TRUE(cold.ok()) << cold.error().describe();
            std::string diff;
            ASSERT_TRUE(eco::equivalent(inc, cold.value(), &diff)) << diff;
            ckpt = eco::makeCheckpoint(inc, coldOpts);
        }
    }
}

// -------------------------------------------------------------- reports

TEST(EcoReport, CarriesTheRunSchemaPlusAnEcoSection) {
    const Design base = laneDesign();
    StreakOptions opts;
    const FlowResult baseFlow = runStreak(base, opts);
    ASSERT_TRUE(baseFlow.ok());
    const eco::Checkpoint ckpt =
        eco::makeCheckpoint(base, opts, baseFlow.value());
    const eco::EcoResult inc =
        eco::runEco(ckpt, {movePin(3, 0, 1, {23, 2})});
    const obs::json::Value report =
        eco::buildEcoReport(inc, opts, 0.25, 0.75);
    ASSERT_NE(report.find("schema"), nullptr);
    EXPECT_EQ(report.find("schema")->asString(), "streak-run-report");
    const obs::json::Value* ecoSec = report.find("eco");
    ASSERT_NE(ecoSec, nullptr);
    EXPECT_EQ(ecoSec->find("totalGroups")->asNumber(), 4.0);
    EXPECT_EQ(ecoSec->find("resolvedGroups")->asNumber(), 1.0);
    EXPECT_EQ(ecoSec->find("carriedGroups")->asNumber(), 3.0);
    EXPECT_EQ(ecoSec->find("coldSeconds")->asNumber(), 0.75);
    const obs::json::Value* robustSec = report.find("robust");
    ASSERT_NE(robustSec, nullptr);
    EXPECT_NE(robustSec->find("degradations"), nullptr);
    // Round-trips through the JSON parser (the report_check contract).
    std::string error;
    EXPECT_FALSE(obs::json::parse(report.dump(2), &error).isNull()) << error;
}

}  // namespace
}  // namespace streak
