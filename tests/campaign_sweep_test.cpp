// End-to-end campaign runs (slow tier): a mini sweep over a shrunk
// suite persists well-formed, provenance-stamped records; the records
// round-trip through the JSONL store; a self-diff is clean; the
// counter-scaling drill knob makes the diff flag a maze-pop regression;
// and the ilp + manual configs line up with a kernel-bench-shaped
// baseline.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/json.hpp"

namespace streak {
namespace {

namespace json = obs::json;

campaign::CampaignSpec miniSpec() {
    campaign::CampaignSpec spec;
    spec.suites = {1};
    spec.configs = {campaign::configByName("pd-nopost"),
                    campaign::configByName("ilp"),
                    campaign::configByName("manual")};
    spec.threads = {1, 2};
    return spec;
}

class CampaignSweep : public ::testing::Test {
protected:
    // One real sweep shared by every test in the suite. Order is
    // config-major, threads-minor: pd-nopost t1/t2, ilp t1/t2,
    // manual t1/t2.
    static void SetUpTestSuite() {
        records_ = new std::vector<campaign::RunRecord>(
            campaign::runCampaign(miniSpec()));
    }
    static void TearDownTestSuite() {
        delete records_;
        records_ = nullptr;
    }
    static const std::vector<campaign::RunRecord>& records() {
        return *records_;
    }
    static campaign::Store store() {
        campaign::Store s;
        s.records = records();
        return s;
    }

private:
    static std::vector<campaign::RunRecord>* records_;
};

std::vector<campaign::RunRecord>* CampaignSweep::records_ = nullptr;

TEST_F(CampaignSweep, PersistsOneProvenancedRecordPerSweepPoint) {
    ASSERT_EQ(records().size(), 6u);  // 1 suite x 3 configs x 2 threads
    for (const campaign::RunRecord& r : records()) {
        EXPECT_EQ(r.instance, "synth1-shrunk");
        EXPECT_EQ(r.problemHash.size(), 16u) << r.config;
        EXPECT_EQ(r.configHash.size(), 16u) << r.config;
        EXPECT_FALSE(r.hostname.empty());
        EXPECT_GE(r.hardwareThreads, 1);
        EXPECT_GT(r.wallSeconds, 0.0);
        EXPECT_GT(r.wirelength, 0) << r.config;
        EXPECT_FALSE(r.degraded) << r.config;
        EXPECT_FALSE(r.counters.empty()) << r.config;
    }
    // Detail instrumentation is on, so each config's hot-path counter —
    // the one the diff watches — is present.
    EXPECT_TRUE(records()[0].counters.contains("solve/pd.iterations"));
    EXPECT_TRUE(records()[2].counters.contains("ilp/lp.pivots"));
    EXPECT_TRUE(records()[4].counters.contains("route/maze.pops"));
    EXPECT_GT(records()[4].counters.at("route/maze.pops"), 0);
    // Same problem, so the problem hash is shared; distinct configs hash
    // apart.
    EXPECT_EQ(records()[0].problemHash, records()[2].problemHash);
    EXPECT_NE(records()[0].configHash, records()[2].configHash);
    EXPECT_NE(records()[2].configHash, records()[4].configHash);
}

TEST_F(CampaignSweep, CountersAreThreadCountInvariant) {
    for (const size_t at : {0u, 2u, 4u}) {
        EXPECT_EQ(records()[at].counters, records()[at + 1].counters)
            << records()[at].config;
        EXPECT_EQ(records()[at].wirelength, records()[at + 1].wirelength)
            << records()[at].config;
    }
}

TEST_F(CampaignSweep, RecordsRoundTripThroughTheStore) {
    std::ostringstream os;
    campaign::appendStore(records(), os);
    std::istringstream is(os.str());
    const campaign::Store back = campaign::readStore(is, "store");
    EXPECT_TRUE(back.problems.empty());
    ASSERT_EQ(back.records.size(), records().size());
    for (size_t i = 0; i < records().size(); ++i) {
        EXPECT_EQ(back.records[i].config, records()[i].config);
        EXPECT_EQ(back.records[i].threads, records()[i].threads);
        EXPECT_EQ(back.records[i].counters, records()[i].counters);
        EXPECT_EQ(back.records[i].wirelength, records()[i].wirelength);
    }
}

TEST_F(CampaignSweep, SelfDiffIsClean) {
    const campaign::DiffReport report =
        campaign::diffAgainstStore(store(), store());
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.comparedRuns, 6);
    EXPECT_TRUE(report.notes.empty());
}

TEST_F(CampaignSweep, ScaledCounterDrillFlagsAMazePopRegression) {
    // The drill knob: re-run the manual sweep point with maze pops
    // scaled 2x and diff it against the clean baseline.
    campaign::CampaignSpec drill;
    drill.suites = {1};
    drill.configs = {campaign::configByName("manual")};
    drill.threads = {1};
    drill.scaleCounters = {{"route/maze.pops", 2.0}};
    campaign::Store current;
    current.records = campaign::runCampaign(drill);
    ASSERT_EQ(current.records.size(), 1u);

    const campaign::DiffReport report =
        campaign::diffAgainstStore(store(), current);
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.regressions.size(), 1u);
    const campaign::Regression& r = report.regressions.front();
    EXPECT_EQ(r.kind, "counter");
    EXPECT_EQ(r.metric, "route/maze.pops");
    EXPECT_NEAR(r.growthPercent, 100.0, 1e-6);

    // The verdict the CLI writes for this diff says not-ok.
    const json::Value verdict = campaign::verdictJson({report});
    EXPECT_FALSE(verdict.find("ok")->asBool());
    EXPECT_EQ(static_cast<int>(verdict.find("regressionCount")->asNumber()),
              1);
}

TEST_F(CampaignSweep, IlpAndManualRecordsMatchABenchShapedBaseline) {
    // Synthesize a kernel-bench document from the runs themselves: the
    // diff must accept it, proving the ilp and manual configs measure
    // the same quantities as the committed BENCH_streak.json after
    // sides.
    const campaign::RunRecord& ilp = records()[2];
    const campaign::RunRecord& manual = records()[4];
    ASSERT_EQ(ilp.config, "ilp");
    ASSERT_EQ(manual.config, "manual");

    json::Object lpCounters;
    lpCounters.set("ilp/lp.pivots", ilp.counters.at("ilp/lp.pivots"));
    json::Object lpSolution;
    lpSolution.set("routability", ilp.routability);
    lpSolution.set("wirelength", ilp.wirelength);
    lpSolution.set("totalOverflow", ilp.totalOverflow);
    json::Object lpAfter;
    lpAfter.set("counters", std::move(lpCounters));
    lpAfter.set("solution", std::move(lpSolution));
    json::Object lpEntry;
    lpEntry.set("kernel", "ilp/lp");
    lpEntry.set("design", ilp.instance);
    lpEntry.set("after", std::move(lpAfter));

    // The maze side uses the bench's routedBits/totalBits shape.
    // synth1-shrunk has 30 bits (see BENCH_streak.json), so the ratio
    // reconstructs the record's routability exactly.
    json::Object mazeCounters;
    mazeCounters.set("route/maze.pops",
                     manual.counters.at("route/maze.pops"));
    json::Object mazeSolution;
    mazeSolution.set("routedBits",
                     static_cast<int>(manual.routability * 30.0 + 0.5));
    mazeSolution.set("totalBits", 30);
    mazeSolution.set("wirelength", manual.wirelength);
    mazeSolution.set("vias", manual.vias);
    json::Object mazeAfter;
    mazeAfter.set("counters", std::move(mazeCounters));
    mazeAfter.set("solution", std::move(mazeSolution));
    json::Object mazeEntry;
    mazeEntry.set("kernel", "route/maze");
    mazeEntry.set("design", manual.instance);
    mazeEntry.set("after", std::move(mazeAfter));

    json::Object doc;
    doc.set("schema", "streak-kernel-bench");
    doc.set("schemaVersion", 1);
    doc.set("kernels", json::Array{json::Value(std::move(lpEntry)),
                                   json::Value(std::move(mazeEntry))});

    const campaign::DiffReport report = campaign::diffAgainstBench(
        json::Value(std::move(doc)), store());
    EXPECT_TRUE(report.ok()) << report.regressions.front().metric;
    // ilp t1/t2 + manual t1/t2 all compare against the two entries.
    EXPECT_EQ(report.comparedRuns, 4);
}

}  // namespace
}  // namespace streak
