#include "core/similarity.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(DirectionIndex, EightDirections) {
    const Point o{5, 5};
    EXPECT_EQ(directionIndex(o, {9, 5}), 0);  // +x
    EXPECT_EQ(directionIndex(o, {9, 9}), 1);  // QI
    EXPECT_EQ(directionIndex(o, {5, 9}), 2);  // +y
    EXPECT_EQ(directionIndex(o, {1, 9}), 3);  // QII
    EXPECT_EQ(directionIndex(o, {1, 5}), 4);  // -x
    EXPECT_EQ(directionIndex(o, {1, 1}), 5);  // QIII
    EXPECT_EQ(directionIndex(o, {5, 1}), 6);  // -y
    EXPECT_EQ(directionIndex(o, {9, 1}), 7);  // QIV
}

TEST(PinSimilarity, PaperTwoPinExample) {
    // Fig. 3(a) top style: driver with one sink at +x.
    const Bit bit = testutil::makeBit({{0, 0}, {6, 0}});
    const SimilarityVector driver = pinSimilarity(bit, 0);
    EXPECT_EQ(driver.v, (std::array<int, 8>{1, 0, 0, 0, 0, 0, 0, 0}));
    const SimilarityVector sink = pinSimilarity(bit, 1);
    EXPECT_EQ(sink.v, (std::array<int, 8>{0, 0, 0, 0, 1, 0, 0, 0}));
}

TEST(PinSimilarity, AllEightDirections) {
    // Fig. 5(a): driver in the middle, one sink in each direction.
    std::vector<Point> pins{{0, 0}};
    const Point around[8] = {{3, 0}, {3, 3}, {0, 3}, {-3, 3},
                             {-3, 0}, {-3, -3}, {0, -3}, {3, -3}};
    for (const Point p : around) pins.push_back(p);
    const Bit bit = testutil::makeBit(pins);
    const SimilarityVector sv = pinSimilarity(bit, 0);
    EXPECT_EQ(sv.v, (std::array<int, 8>{1, 1, 1, 1, 1, 1, 1, 1}));
}

TEST(PinSimilarity, TranslationInvariant) {
    const Bit a = testutil::makeBit({{2, 3}, {7, 3}, {5, 8}});
    const Bit b = testutil::makeBit({{12, 23}, {17, 23}, {15, 28}});
    for (int p = 0; p < 3; ++p) {
        EXPECT_EQ(pinSimilarity(a, p), pinSimilarity(b, p));
    }
}

TEST(PinSimilarity, StretchInvariant) {
    // SV captures direction only, not distance.
    const Bit a = testutil::makeBit({{0, 0}, {3, 1}});
    const Bit b = testutil::makeBit({{0, 0}, {9, 5}});
    EXPECT_EQ(pinSimilarity(a, 0), pinSimilarity(b, 0));
}

TEST(PinSimilarity, CoincidentPinsNotCounted) {
    const Bit bit = testutil::makeBit({{1, 1}, {1, 1}, {4, 1}});
    EXPECT_EQ(pinSimilarity(bit, 0).v,
              (std::array<int, 8>{1, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(BitSimilarities, AlignedWithPins) {
    const Bit bit = testutil::makeBit({{0, 0}, {5, 0}, {0, 5}});
    const auto svs = bitSimilarities(bit);
    ASSERT_EQ(svs.size(), 3u);
    EXPECT_EQ(svs[0].v, (std::array<int, 8>{1, 0, 1, 0, 0, 0, 0, 0}));
}

TEST(WeightedSimilarity, DriverDominates) {
    const std::vector<Point> pts{{0, 0}, {5, 0}, {0, 5}};
    const SimilarityVector sv = weightedSimilarity(pts, 1, 0, 10);
    // From (5,0): driver at -x with weight 10, the other point in QII.
    EXPECT_EQ(sv.v, (std::array<int, 8>{0, 0, 0, 1, 10, 0, 0, 0}));
}

TEST(SvDistance, L1Metric) {
    SimilarityVector a, b;
    a.v = {1, 0, 0, 0, 0, 0, 0, 0};
    b.v = {0, 0, 1, 0, 0, 0, 0, 0};
    EXPECT_EQ(svDistance(a, a), 0);
    EXPECT_EQ(svDistance(a, b), 2);
}

TEST(SvKey, EqualVectorsSameKey) {
    SimilarityVector a, b;
    a.v = {1, 2, 0, 0, 3, 0, 0, 0};
    b.v = a.v;
    EXPECT_EQ(svKey(a), svKey(b));
    b.v[7] = 1;
    EXPECT_NE(svKey(a), svKey(b));
}

}  // namespace
}  // namespace streak
