// Randomized end-to-end property sweep: random suite specs through the
// whole flow, asserting every invariant that must hold regardless of the
// design (capacity legality, accounting, bounds, determinism, IO round
// trips, track assignment legality).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/validate.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "track/tracks.hpp"

namespace streak {
namespace {

gen::SuiteSpec randomSpec(unsigned seed) {
    std::mt19937 rng(seed);
    const auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    gen::SuiteSpec s;
    s.name = "fuzz" + std::to_string(seed);
    s.gridWidth = pick(24, 64);
    s.gridHeight = pick(24, 64);
    s.numLayers = pick(2, 4) * 2;  // even stacks
    s.capacity = pick(4, 14);
    s.numGroups = pick(3, 14);
    s.minGroupWidth = pick(2, 4);
    s.maxGroupWidth = s.minGroupWidth + pick(0, 10);
    s.maxPins = pick(2, 9);
    s.multipinFraction = pick(0, 100) / 100.0;
    s.twoStyleFraction = pick(0, 80) / 100.0;
    s.stretchFraction = pick(0, 30) / 100.0;
    s.numBlockages = pick(0, 10);
    s.viaCapacity = pick(0, 3) == 0 ? pick(4, 10) : -1;
    s.seed = seed * 7919u + 3u;
    return s;
}

class FlowFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(FlowFuzz, GeneratedDesignIsValid) {
    const Design d = gen::generate(randomSpec(GetParam()));
    EXPECT_TRUE(isRoutable(validateDesign(d)));
}

TEST_P(FlowFuzz, FullFlowInvariants) {
    const Design d = gen::generate(randomSpec(GetParam()));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();

    EXPECT_EQ(r.metrics.totalOverflow, 0);
    EXPECT_EQ(r.metrics.totalViaOverflow, 0);
    EXPECT_EQ(r.routed.routedBits() +
                  static_cast<int>(r.routed.unroutedMembers.size()),
              d.numNets());
    EXPECT_GE(r.solverSolution.objective,
              r.problem.costLowerBound() - 1e-9);
    EXPECT_LE(r.distanceViolationsAfter, r.distanceViolationsBefore);
    EXPECT_GE(r.metrics.avgRegularity, 0.0);
    EXPECT_LE(r.metrics.avgRegularity, 1.0);
    for (const RoutedBit& b : r.routed.bits) {
        EXPECT_TRUE(b.topo.connected());
    }
}

TEST_P(FlowFuzz, FlowIsDeterministic) {
    const Design d = gen::generate(randomSpec(GetParam()));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult a = runStreak(d, opts).value();
    const StreakResult b = runStreak(d, opts).value();
    EXPECT_EQ(a.solverSolution.chosen, b.solverSolution.chosen);
    EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength);
    EXPECT_EQ(a.metrics.routedBits, b.metrics.routedBits);
}

TEST_P(FlowFuzz, DesignFileRoundTrip) {
    const Design d = gen::generate(randomSpec(GetParam()));
    std::stringstream ss;
    io::writeDesign(d, ss);
    const Design back = io::readDesign(ss);
    ASSERT_EQ(back.numNets(), d.numNets());
    // Routing the reloaded design gives identical results.
    StreakOptions opts;
    const StreakResult r1 = runStreak(d, opts).value();
    const StreakResult r2 = runStreak(back, opts).value();
    EXPECT_EQ(r1.metrics.wirelength, r2.metrics.wirelength);
    EXPECT_EQ(r1.metrics.routedBits, r2.metrics.routedBits);
}

TEST_P(FlowFuzz, TrackAssignmentLegal) {
    const Design d = gen::generate(randomSpec(GetParam()));
    const StreakResult r = runStreak(d, StreakOptions{}).value();
    const track::TrackAssignment ta = track::assignTracks(r.routed);
    // Placed trunks never exceed the covered edges' capacities.
    for (const track::AssignedWire& w : ta.wires) {
        if (w.track < 0) continue;
        EXPECT_GE(w.track, 0);
        const bool horiz = w.segment.horizontal();
        if (horiz) {
            for (int x = w.segment.a.x; x < w.segment.b.x; ++x) {
                EXPECT_LT(w.track,
                          d.grid.capacity(d.grid.edgeId(w.layer, x,
                                                        w.segment.a.y)));
            }
        } else {
            for (int y = w.segment.a.y; y < w.segment.b.y; ++y) {
                EXPECT_LT(w.track,
                          d.grid.capacity(d.grid.edgeId(w.layer,
                                                        w.segment.a.x, y)));
            }
        }
    }
    // A capacity-legal route leaves at most a tiny dogleg residue.
    EXPECT_LE(ta.unplaced,
              2 + static_cast<int>(ta.wires.size()) / 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowFuzz, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace streak
