// Randomized end-to-end property sweep: random suite specs through the
// whole flow, asserting every invariant that must hold regardless of the
// design (capacity legality, accounting, bounds, determinism, IO round
// trips, track assignment legality) — plus hostile-input fuzzing of the
// ECO checkpoint reader (truncation, bit flips, version skew).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "core/validate.hpp"
#include "eco/checkpoint.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "robust/error.hpp"
#include "track/tracks.hpp"

namespace streak {
namespace {

gen::SuiteSpec randomSpec(unsigned seed) {
    std::mt19937 rng(seed);
    const auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    gen::SuiteSpec s;
    s.name = "fuzz" + std::to_string(seed);
    s.gridWidth = pick(24, 64);
    s.gridHeight = pick(24, 64);
    s.numLayers = pick(2, 4) * 2;  // even stacks
    s.capacity = pick(4, 14);
    s.numGroups = pick(3, 14);
    s.minGroupWidth = pick(2, 4);
    s.maxGroupWidth = s.minGroupWidth + pick(0, 10);
    s.maxPins = pick(2, 9);
    s.multipinFraction = pick(0, 100) / 100.0;
    s.twoStyleFraction = pick(0, 80) / 100.0;
    s.stretchFraction = pick(0, 30) / 100.0;
    s.numBlockages = pick(0, 10);
    s.viaCapacity = pick(0, 3) == 0 ? pick(4, 10) : -1;
    s.seed = seed * 7919u + 3u;
    return s;
}

class FlowFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(FlowFuzz, GeneratedDesignIsValid) {
    const Design d = gen::generate(randomSpec(GetParam()));
    EXPECT_TRUE(isRoutable(validateDesign(d)));
}

TEST_P(FlowFuzz, FullFlowInvariants) {
    const Design d = gen::generate(randomSpec(GetParam()));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();

    EXPECT_EQ(r.metrics.totalOverflow, 0);
    EXPECT_EQ(r.metrics.totalViaOverflow, 0);
    EXPECT_EQ(r.routed.routedBits() +
                  static_cast<int>(r.routed.unroutedMembers.size()),
              d.numNets());
    EXPECT_GE(r.solverSolution.objective,
              r.problem.costLowerBound() - 1e-9);
    EXPECT_LE(r.distanceViolationsAfter, r.distanceViolationsBefore);
    EXPECT_GE(r.metrics.avgRegularity, 0.0);
    EXPECT_LE(r.metrics.avgRegularity, 1.0);
    for (const RoutedBit& b : r.routed.bits) {
        EXPECT_TRUE(b.topo.connected());
    }
}

TEST_P(FlowFuzz, FlowIsDeterministic) {
    const Design d = gen::generate(randomSpec(GetParam()));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult a = runStreak(d, opts).value();
    const StreakResult b = runStreak(d, opts).value();
    EXPECT_EQ(a.solverSolution.chosen, b.solverSolution.chosen);
    EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength);
    EXPECT_EQ(a.metrics.routedBits, b.metrics.routedBits);
}

TEST_P(FlowFuzz, DesignFileRoundTrip) {
    const Design d = gen::generate(randomSpec(GetParam()));
    std::stringstream ss;
    io::writeDesign(d, ss);
    const Design back = io::readDesign(ss);
    ASSERT_EQ(back.numNets(), d.numNets());
    // Routing the reloaded design gives identical results.
    StreakOptions opts;
    const StreakResult r1 = runStreak(d, opts).value();
    const StreakResult r2 = runStreak(back, opts).value();
    EXPECT_EQ(r1.metrics.wirelength, r2.metrics.wirelength);
    EXPECT_EQ(r1.metrics.routedBits, r2.metrics.routedBits);
}

TEST_P(FlowFuzz, TrackAssignmentLegal) {
    const Design d = gen::generate(randomSpec(GetParam()));
    const StreakResult r = runStreak(d, StreakOptions{}).value();
    const track::TrackAssignment ta = track::assignTracks(r.routed);
    // Placed trunks never exceed the covered edges' capacities.
    for (const track::AssignedWire& w : ta.wires) {
        if (w.track < 0) continue;
        EXPECT_GE(w.track, 0);
        const bool horiz = w.segment.horizontal();
        if (horiz) {
            for (int x = w.segment.a.x; x < w.segment.b.x; ++x) {
                EXPECT_LT(w.track,
                          d.grid.capacity(d.grid.edgeId(w.layer, x,
                                                        w.segment.a.y)));
            }
        } else {
            for (int y = w.segment.a.y; y < w.segment.b.y; ++y) {
                EXPECT_LT(w.track,
                          d.grid.capacity(d.grid.edgeId(w.layer,
                                                        w.segment.a.x, y)));
            }
        }
    }
    // A capacity-legal route leaves at most a tiny dogleg residue.
    EXPECT_LE(ta.unplaced,
              2 + static_cast<int>(ta.wires.size()) / 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowFuzz, ::testing::Range(1u, 13u));

// ----------------------------------------------- checkpoint reader fuzz
//
// The ECO checkpoint reader's contract (eco/checkpoint.hpp): any
// malformed buffer — truncated, bit-flipped, version-skewed, garbage —
// produces a structured robust::StreakError, never a crash or UB.
// check.sh stage 10 reruns this block under ASan/UBSan.

/// A deliberately tiny routed checkpoint so exhaustive per-byte fuzzing
/// stays cheap; built once per process.
const std::string& tinyCheckpointBuffer() {
    static const std::string buffer = [] {
        gen::SuiteSpec spec;
        spec.name = "ckptfuzz";
        spec.gridWidth = 12;
        spec.gridHeight = 12;
        spec.numLayers = 2;
        spec.numGroups = 2;
        spec.minGroupWidth = 2;
        spec.maxGroupWidth = 3;
        spec.numBlockages = 1;
        const Design d = gen::generate(spec);
        StreakOptions opts;
        const StreakResult r = runStreak(d, opts).value();
        std::ostringstream os;
        eco::writeCheckpoint(eco::makeCheckpoint(d, opts, r), os);
        return os.str();
    }();
    return buffer;
}

/// True when the reader rejected the buffer with the structured
/// invalid-input error; any other exception type propagates and fails
/// the test (that would be the reader breaking its contract).
bool rejectsStructurally(const std::string& buf) {
    try {
        (void)eco::readCheckpointBuffer(buf);
        return false;
    } catch (const robust::StreakException& e) {
        EXPECT_EQ(e.error().kind, robust::ErrorKind::InvalidInput)
            << e.error().describe();
        EXPECT_FALSE(e.error().message.empty());
        return true;
    }
}

TEST(CheckpointFuzz, IntactBufferParses) {
    const std::string& buf = tinyCheckpointBuffer();
    const eco::Checkpoint back = eco::readCheckpointBuffer(buf);
    EXPECT_GT(back.bits.size(), 0u);
}

TEST(CheckpointFuzz, EveryTruncationIsRejectedStructurally) {
    const std::string& buf = tinyCheckpointBuffer();
    for (size_t len = 0; len < buf.size(); ++len) {
        EXPECT_TRUE(rejectsStructurally(buf.substr(0, len)))
            << "prefix of " << len << " bytes parsed";
    }
}

TEST(CheckpointFuzz, EveryBitFlipIsRejectedStructurally) {
    // The trailing checksum covers every byte before it, so a single
    // flipped bit anywhere — header, payload or the checksum itself —
    // must surface as one structured error.
    const std::string& buf = tinyCheckpointBuffer();
    for (size_t i = 0; i < buf.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutant = buf;
            mutant[i] = static_cast<char>(
                static_cast<unsigned char>(mutant[i]) ^ (1u << bit));
            EXPECT_TRUE(rejectsStructurally(mutant))
                << "flip of byte " << i << " bit " << bit << " parsed";
        }
    }
}

TEST(CheckpointFuzz, VersionSkewIsRejectedEvenWithAValidChecksum) {
    // Patch the u32 format version (offset 8, little-endian) and repair
    // the trailing FNV-1a so the rejection is the version check itself,
    // not a checksum side effect.
    std::string buf = tinyCheckpointBuffer();
    ASSERT_GT(buf.size(), 16u);
    buf[8] = static_cast<char>(eco::kCheckpointVersion + 1);
    std::uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i + 8 < buf.size(); ++i) {
        h ^= static_cast<unsigned char>(buf[i]);
        h *= 1099511628211ull;
    }
    for (int i = 0; i < 8; ++i) {
        buf[buf.size() - 8 + static_cast<size_t>(i)] =
            static_cast<char>((h >> (8 * i)) & 0xffu);
    }
    EXPECT_TRUE(rejectsStructurally(buf));
}

TEST(CheckpointFuzz, GarbageBuffersAreRejectedStructurally) {
    EXPECT_TRUE(rejectsStructurally(""));
    EXPECT_TRUE(rejectsStructurally("STRKECO\n"));
    EXPECT_TRUE(rejectsStructurally("not a checkpoint at all"));
    std::mt19937 rng(7u);
    for (const size_t len : {16u, 64u, 1024u, 9000u}) {
        std::string junk(len, '\0');
        for (char& c : junk) c = static_cast<char>(rng() & 0xffu);
        EXPECT_TRUE(rejectsStructurally(junk)) << len << " random bytes";
    }
}

}  // namespace
}  // namespace streak
