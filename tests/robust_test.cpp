// Unit tests for the fault-tolerance layer (src/robust): structured
// errors, deadline/cancellation tickets, strided tick gates, and the
// deterministic fault-injection registry.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "robust/control.hpp"
#include "robust/error.hpp"
#include "robust/fault.hpp"

namespace streak::robust {
namespace {

// ----------------------------------------------------------- errors

TEST(StreakError, DescribeComposesKindStageSiteAndMessage) {
    StreakError err;
    err.kind = ErrorKind::DeadlineExpired;
    err.stage = "flow/solve";
    err.site = "lp/pivot";
    err.message = "wall-clock deadline exceeded";
    EXPECT_EQ(err.describe(),
              "deadline-expired at flow/solve (lp/pivot): "
              "wall-clock deadline exceeded");
    StreakError bare;
    bare.kind = ErrorKind::Internal;
    EXPECT_EQ(bare.describe(), "internal");
}

TEST(StreakError, KindNamesAndExitCodesAreDistinct) {
    const ErrorKind kinds[] = {ErrorKind::InvalidInput,
                               ErrorKind::DeadlineExpired,
                               ErrorKind::Cancelled, ErrorKind::FaultInjected,
                               ErrorKind::Internal};
    std::set<std::string> names;
    std::set<int> codes;
    for (const ErrorKind k : kinds) {
        names.insert(errorKindName(k));
        const int code = exitCodeFor(k);
        codes.insert(code);
        // 0/1/2 keep their historical CLI meanings.
        EXPECT_GE(code, 3);
    }
    EXPECT_EQ(names.size(), 5u);
    EXPECT_EQ(codes.size(), 5u);
}

TEST(StreakException, NoteStageKeepsTheInnermostStage) {
    StreakError err;
    err.kind = ErrorKind::FaultInjected;
    err.message = "boom";
    StreakException e(err);
    e.noteStage("flow/solve");
    EXPECT_EQ(e.error().stage, "flow/solve");
    e.noteStage("flow/run");  // outer wrapper must not overwrite
    EXPECT_EQ(e.error().stage, "flow/solve");
    EXPECT_NE(std::string(e.what()).find("flow/solve"), std::string::npos);
}

TEST(StreakException, IsARuntimeErrorForLegacyCatchSites) {
    StreakError err;
    err.kind = ErrorKind::InvalidInput;
    err.message = "bad input";
    try {
        raise(std::move(err));
        FAIL() << "raise must throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("bad input"), std::string::npos);
    }
}

// ----------------------------------------------- deadline and ticket

TEST(Deadline, NonPositiveBudgetNeverExpires) {
    const Deadline never(0.0);
    EXPECT_FALSE(never.armed());
    EXPECT_FALSE(never.expired());
    const Deadline negative(-1.0);
    EXPECT_FALSE(negative.armed());
    EXPECT_FALSE(negative.expired());
}

TEST(Deadline, TinyBudgetExpires) {
    const Deadline d(1e-9);
    ASSERT_TRUE(d.armed());
    while (!d.expired()) {
    }  // terminates as soon as the stopwatch advances past 1ns
    EXPECT_TRUE(d.expired());
}

TEST(Ticket, IdleTicketNeverTrips) {
    const Ticket idle;
    EXPECT_TRUE(idle.idle());
    EXPECT_EQ(idle.trip(), Trip::None);
    EXPECT_NO_THROW(idle.checkpoint("test/site"));
}

TEST(Ticket, CancellationTripsWithAStructuredError) {
    auto cancel = std::make_shared<CancelToken>();
    const Ticket ticket(nullptr, cancel);
    EXPECT_FALSE(ticket.idle());
    EXPECT_NO_THROW(ticket.checkpoint("test/site"));
    cancel->requestCancel();
    EXPECT_EQ(ticket.trip(), Trip::Cancelled);
    try {
        ticket.checkpoint("test/site");
        FAIL() << "expected a trip";
    } catch (const StreakException& e) {
        EXPECT_EQ(e.error().kind, ErrorKind::Cancelled);
        EXPECT_EQ(e.error().site, "test/site");
        EXPECT_FALSE(e.error().recoverable);
    }
}

TEST(Ticket, ExpiredDeadlineTripsRecoverably) {
    auto deadline = std::make_shared<Deadline>(1e-9);
    const Ticket ticket(deadline, nullptr);
    while (!deadline->expired()) {
    }
    try {
        ticket.checkpoint("maze/pop");
        FAIL() << "expected a trip";
    } catch (const StreakException& e) {
        EXPECT_EQ(e.error().kind, ErrorKind::DeadlineExpired);
        EXPECT_EQ(e.error().site, "maze/pop");
        EXPECT_TRUE(e.error().recoverable);
    }
}

TEST(Ticket, CancellationWinsOverDeadline) {
    auto deadline = std::make_shared<Deadline>(1e-9);
    auto cancel = std::make_shared<CancelToken>();
    cancel->requestCancel();
    const Ticket ticket(deadline, cancel);
    while (!deadline->expired()) {
    }
    EXPECT_EQ(ticket.trip(), Trip::Cancelled);
}

TEST(TickGate, PollsOnlyEveryStride) {
    auto cancel = std::make_shared<CancelToken>();
    cancel->requestCancel();
    const Ticket ticket(nullptr, cancel);
    TickGate gate(ticket, "test/site", /*stride=*/4);
    // The first three ticks must not poll (hot-loop contract).
    EXPECT_NO_THROW(gate.tick());
    EXPECT_NO_THROW(gate.tick());
    EXPECT_NO_THROW(gate.tick());
    EXPECT_THROW(gate.tick(), StreakException);
}

TEST(TickGate, IdleTicketCostsNothingAndNeverThrows) {
    const Ticket idle;
    TickGate gate(idle, "test/site", /*stride=*/1);
    for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(gate.tick());
}

// ------------------------------------------------- fault injection

class FaultRegistry : public ::testing::Test {
protected:
    void SetUp() override {
        if (!faultInjectionCompiled()) {
            GTEST_SKIP() << "STREAK_FAULTS=0 in this build";
        }
        disarmFaults();
    }
    void TearDown() override { disarmFaults(); }
};

TEST_F(FaultRegistry, ArmedSiteFiresOnTheExactHit) {
    // io/read executes once per readDesign call; arm hit index 1 so the
    // first call survives and the second throws.
    armFault("io/read", /*hitIndex=*/1);
    const std::string text = "STREAK 1\nGRID 8 8 2 4\n";
    {
        std::stringstream ss(text);
        EXPECT_NO_THROW((void)io::readDesign(ss));
    }
    {
        std::stringstream ss(text);
        try {
            (void)io::readDesign(ss);
            FAIL() << "expected the armed fault to fire";
        } catch (const StreakException& e) {
            EXPECT_EQ(e.error().kind, ErrorKind::FaultInjected);
            EXPECT_EQ(e.error().site, "io/read");
            EXPECT_TRUE(e.error().recoverable);
        }
    }
    // Fired faults disarm-by-exhaustion is NOT the contract: the same
    // hit index never matches again, so later calls succeed.
    {
        std::stringstream ss(text);
        EXPECT_NO_THROW((void)io::readDesign(ss));
    }
    EXPECT_EQ(faultHits("io/read"), 3);
}

TEST_F(FaultRegistry, DisarmedSitesCountNothing) {
    std::stringstream ss("STREAK 1\nGRID 8 8 2 4\n");
    (void)io::readDesign(ss);
    EXPECT_EQ(faultHits("io/read"), 0);
    EXPECT_TRUE(faultSitesSeen().empty());
}

TEST_F(FaultRegistry, SeededScheduleIsDeterministicAndBounded) {
    const long a = armFaultFromSeed("ilp/solve", 12345, /*maxHit=*/3);
    const long b = armFaultFromSeed("ilp/solve", 12345, /*maxHit=*/3);
    EXPECT_EQ(a, b);
    for (unsigned long seed = 0; seed < 64; ++seed) {
        const long idx = armFaultFromSeed("ilp/solve", seed, /*maxHit=*/3);
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, 3);
    }
    // Different sites with the same seed need not collide on one index.
    std::set<long> spread;
    for (const char* site : {"ilp/solve", "maze/search", "pd/iteration",
                             "post/refine", "io/read"}) {
        spread.insert(armFaultFromSeed(site, 7, /*maxHit=*/3));
    }
    EXPECT_GE(spread.size(), 2u);
}

TEST_F(FaultRegistry, CatalogIsSortedAndUnique) {
    const std::vector<std::string>& catalog = faultSiteCatalog();
    ASSERT_FALSE(catalog.empty());
    for (size_t i = 1; i < catalog.size(); ++i) {
        EXPECT_LT(catalog[i - 1], catalog[i]);
    }
}

TEST_F(FaultRegistry, EverySiteSeenInAFullRunIsCataloged) {
    // Arm an unreachable hit index on a site that never fires so hit
    // counting is active, then run the widest flow configuration plus a
    // design-file roundtrip. Any executed site missing from the catalog
    // is catalog rot.
    armFault("io/read", /*hitIndex=*/1000000);
    const Design d = gen::generate([] {
        gen::SuiteSpec spec = gen::synthSpec(6);
        spec.numGroups = 4;
        spec.gridWidth = 32;
        spec.gridHeight = 32;
        return spec;
    }());
    std::stringstream ss;
    io::writeDesign(d, ss);
    const Design loaded = io::readDesign(ss);
    StreakOptions opts;
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 5.0;
    opts.postOptimize = true;
    (void)runStreak(loaded, opts).value();

    const std::vector<std::string>& catalog = faultSiteCatalog();
    const std::set<std::string> known(catalog.begin(), catalog.end());
    const std::vector<std::string> seen = faultSitesSeen();
    EXPECT_FALSE(seen.empty());
    for (const std::string& site : seen) {
        EXPECT_TRUE(known.contains(site))
            << "site \"" << site << "\" executed but is not in the catalog";
    }
    // The flow above must reach at least these cataloged sites.
    const std::set<std::string> observed(seen.begin(), seen.end());
    for (const char* expected :
         {"io/read", "build/candidates", "ilp/solve", "lp/solve",
          "pd/iteration", "distance/analyze"}) {
        EXPECT_TRUE(observed.contains(expected))
            << "expected site \"" << expected << "\" was never executed";
    }
}

// -------------------------------------------------- flow integration

TEST(FlowRobustness, CancelledRunReturnsAStructuredError) {
    const Design d = gen::generate([] {
        gen::SuiteSpec spec = gen::synthSpec(1);
        spec.numGroups = 3;
        spec.gridWidth = 32;
        spec.gridHeight = 32;
        return spec;
    }());
    StreakOptions opts;
    opts.cancel = std::make_shared<CancelToken>();
    opts.cancel->requestCancel();  // cancelled before the run starts
    const FlowResult res = runStreak(d, opts);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().kind, ErrorKind::Cancelled);
    EXPECT_FALSE(res.error().stage.empty());
}

TEST(FlowRobustness, UncancelledTicketedRunMatchesPlainRun) {
    // Determinism contract: a generous deadline and an unfired cancel
    // token must not change a single byte of the outcome.
    const Design d = gen::generate([] {
        gen::SuiteSpec spec = gen::synthSpec(2);
        spec.numGroups = 4;
        spec.gridWidth = 32;
        spec.gridHeight = 32;
        return spec;
    }());
    StreakOptions plain;
    plain.postOptimize = true;
    const StreakResult a = runStreak(d, plain).value();
    StreakOptions guarded = plain;
    guarded.deadlineSeconds = 3600.0;
    guarded.cancel = std::make_shared<CancelToken>();
    const StreakResult b = runStreak(d, guarded).value();
    EXPECT_EQ(a.metrics.routedBits, b.metrics.routedBits);
    EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength);
    EXPECT_EQ(a.metrics.totalOverflow, b.metrics.totalOverflow);
    EXPECT_EQ(a.distanceViolationsAfter, b.distanceViolationsAfter);
    EXPECT_FALSE(b.degraded());
}

TEST(FlowRobustness, FlowResultContractIsEnforced) {
    StreakError err;
    err.kind = ErrorKind::Internal;
    err.message = "synthetic";
    const FlowResult failed{err};
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().kind, ErrorKind::Internal);
}

}  // namespace
}  // namespace streak::robust
