// Tests for the post-optimization stages: layer prediction (Eq. 7-8),
// bottom-up clustering (Alg. 3) and distance refinement (Alg. 4).
#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "post/clustering.hpp"
#include "post/layer_predict.hpp"
#include "post/refine.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(LayerPredict, PicksFreeLayersOverBlocked) {
    grid::RoutingGrid g(16, 16, 4, 8);
    // Congest horizontal layer 0 along y = 5.
    grid::EdgeUsage usage(g);
    for (int x = 0; x < 15; ++x) usage.add(g.edgeId(0, x, 5), 8);
    // One bit wanting to route along y = 5.
    steiner::Topology t({{1, 5}, {10, 5}}, 0);
    t.addSegment({{1, 5}, {10, 5}});
    const post::LayerPrediction p = post::predictLayers(usage, {{t}});
    EXPECT_EQ(p.hLayer, 2);  // layer 0 is full, layer 2 is the other H
    EXPECT_DOUBLE_EQ(p.hConflict, 0.0);
}

TEST(LayerPredict, AveragesOverCandidates) {
    grid::RoutingGrid g(16, 16, 4, 2);
    grid::EdgeUsage usage(g);
    // Two candidates for one bit: straight y=2 or straight y=6.
    steiner::Topology a({{0, 2}, {8, 2}}, 0);
    a.addSegment({{0, 2}, {8, 2}});
    steiner::Topology b({{0, 6}, {8, 6}}, 0);
    b.addSegment({{0, 6}, {8, 6}});
    const post::LayerPrediction p = post::predictLayers(usage, {{a, b}});
    // Demand 0.5 per edge < capacity: zero conflict everywhere.
    EXPECT_DOUBLE_EQ(p.hConflict, 0.0);
    EXPECT_EQ(p.hLayer, 0);  // ties break bottom-up
}

TEST(LayerPredict, VerticalDirectionIndependent) {
    grid::RoutingGrid g(16, 16, 4, 4);
    grid::EdgeUsage usage(g);
    for (int y = 0; y < 15; ++y) usage.add(g.edgeId(1, 4, y), 4);
    steiner::Topology t({{4, 0}, {4, 9}}, 0);
    t.addSegment({{4, 0}, {4, 9}});
    const post::LayerPrediction p = post::predictLayers(usage, {{t}});
    EXPECT_EQ(p.vLayer, 3);
}

struct PdRun {
    Design design;
    RoutingProblem prob;
    RoutedDesign routed;

    explicit PdRun(Design d, StreakOptions opts = {})
        : design(std::move(d)),
          prob(buildProblem(design, opts)),
          routed(materialize(prob, solvePrimalDual(prob).solution)) {}
};

TEST(Clustering, NoopWhenEverythingRouted) {
    PdRun r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)}));
    ASSERT_TRUE(r.routed.unroutedMembers.empty());
    const post::ClusteringResult res =
        post::clusterAndRoute(r.prob, &r.routed);
    EXPECT_EQ(res.bitsAttempted, 0);
    EXPECT_EQ(res.bitsRouted, 0);
}

TEST(Clustering, RecoversBlockedObjectBitByBit) {
    // A wide group with a blockage across the middle: the shared topology
    // cannot fit as one object (capacity), per-bit clustering finds room.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 8}, {24, 8}}, 8, 0, 1)}, 32, 32, 2, 2);
    // Capacity 2 on a 2-layer grid: an 8-bit object demands disjoint
    // tracks per bit so it fits; force contention with a blockage wall.
    d.grid.addBlockage({{10, 6}, {12, 18}}, 0, 0);
    PdRun r(std::move(d));
    const int before = r.routed.routedBits();
    const post::ClusteringResult res =
        post::clusterAndRoute(r.prob, &r.routed);
    EXPECT_GE(r.routed.routedBits(), before);
    EXPECT_EQ(r.routed.routedBits() - before, res.bitsRouted);
    EXPECT_EQ(r.routed.usage.totalOverflow(), 0);
}

TEST(Clustering, MergedBitsShareClusterKey) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 8}, {20, 8}}, 4, 0, 1)}, 32, 32, 2, 1);
    // Capacity 1 everywhere: the 4-bit object (parallel tracks) still
    // needs 1 track per edge, but the object's *own* demand fits. Force
    // the object-level failure by blocking one bit's track on layer 0.
    d.grid.addBlockage({{8, 9}, {10, 9}}, 0, 0);
    PdRun r(std::move(d));
    post::clusterAndRoute(r.prob, &r.routed);
    // All routed bits carry some cluster key; keys of post-routed bits
    // start at numObjects.
    for (const RoutedBit& b : r.routed.bits) {
        EXPECT_GE(b.clusterKey, 0);
    }
    EXPECT_EQ(r.routed.usage.totalOverflow(), 0);
}

TEST(Refine, FixesInjectedShortPin) {
    // Group of 3 two-pin bits; one sink much closer -> violation; the
    // refinement must add a detour that lengthens the short path.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{4, 10}, {8, 10}}));    // short
    g.bits.push_back(testutil::makeBit({{4, 11}, {24, 11}}));   // long
    g.bits.push_back(testutil::makeBit({{4, 12}, {24, 12}}));   // long
    PdRun r(testutil::makeDesign({g}));
    const post::RefinementResult res =
        post::refineDistances(r.prob, &r.routed);
    EXPECT_EQ(res.violatingGroupsBefore, 1);
    EXPECT_EQ(res.violatingGroupsAfter, 0);
    EXPECT_GT(res.pinsFixed, 0);
    EXPECT_GT(res.addedWirelength, 0);
    // The repaired topology is still a connected tree over its pins.
    for (const RoutedBit& b : r.routed.bits) {
        EXPECT_TRUE(b.topo.connected());
        for (const int dst : b.topo.sourceToSinkDistances()) {
            EXPECT_GE(dst, 0);
        }
    }
    EXPECT_EQ(r.routed.usage.totalOverflow(), 0);
}

TEST(Refine, NoopWithoutViolations) {
    PdRun r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)}));
    const long wlBefore = [&] {
        long wl = 0;
        for (const RoutedBit& b : r.routed.bits) wl += b.topo.wirelength();
        return wl;
    }();
    const post::RefinementResult res =
        post::refineDistances(r.prob, &r.routed);
    EXPECT_EQ(res.violatingGroupsBefore, 0);
    EXPECT_EQ(res.pinsFixed, 0);
    EXPECT_EQ(res.addedWirelength, 0);
    long wlAfter = 0;
    for (const RoutedBit& b : r.routed.bits) wlAfter += b.topo.wirelength();
    EXPECT_EQ(wlAfter, wlBefore);
}

TEST(Refine, DetourAddsExactWirelength) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{4, 10}, {10, 10}}));
    g.bits.push_back(testutil::makeBit({{4, 11}, {26, 11}}));
    PdRun r(testutil::makeDesign({g}));
    long wlBefore = 0;
    for (const RoutedBit& b : r.routed.bits) wlBefore += b.topo.wirelength();
    const post::RefinementResult res =
        post::refineDistances(r.prob, &r.routed);
    long wlAfter = 0;
    for (const RoutedBit& b : r.routed.bits) wlAfter += b.topo.wirelength();
    EXPECT_EQ(wlAfter - wlBefore, res.addedWirelength);
}

TEST(Refine, RespectsCapacityDuringDetours) {
    // Surround the short bit with zero remaining capacity so no legal
    // detour exists; the refinement must leave it alone rather than
    // overflow.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 10}, {8, 10}}, 1, 0, 1, "short"),
         testutil::makeBusGroup({{4, 12}, {26, 12}}, 1, 0, 1, "long")},
        32, 32, 2, 1);
    // Make them one group so the family spans both.
    SignalGroup merged;
    merged.name = "m";
    merged.bits = {d.groups[0].bits[0], d.groups[1].bits[0]};
    Design d2 = testutil::makeDesign({merged}, 32, 32, 2, 1);
    for (int e = 0; e < d2.grid.numEdges(); ++e) {
        // Almost everything full.
        d2.grid.setCapacity(e, 1);
    }
    PdRun r(std::move(d2));
    // Saturate every vertical edge so the perpendicular legs can't fit.
    const grid::RoutingGrid& grid = r.routed.usage.grid();
    for (int l : grid.layersOf(grid::Dir::Vertical)) {
        for (int y = 0; y < grid.height() - 1; ++y) {
            for (int x = 0; x < grid.width(); ++x) {
                const int e = grid.edgeId(l, x, y);
                if (r.routed.usage.remaining(e) > 0) {
                    r.routed.usage.add(e, r.routed.usage.remaining(e));
                }
            }
        }
    }
    const post::RefinementResult res =
        post::refineDistances(r.prob, &r.routed);
    EXPECT_EQ(res.pinsFixed, 0);
    EXPECT_EQ(r.routed.usage.totalOverflow(), 0);
}

}  // namespace
}  // namespace streak
