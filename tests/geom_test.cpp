#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/segment.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace streak::geom {
namespace {

TEST(Point, ManhattanDistance) {
    EXPECT_EQ(manhattan(Point{0, 0}, Point{0, 0}), 0);
    EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
    EXPECT_EQ(manhattan(Point{-2, 5}, Point{1, -1}), 9);
}

TEST(Point, ManhattanIsSymmetric) {
    const Point a{3, -7};
    const Point b{-1, 2};
    EXPECT_EQ(manhattan(a, b), manhattan(b, a));
}

TEST(Point3, CountsLayerCrossings) {
    EXPECT_EQ(manhattan(Point3{0, 0, 0}, Point3{1, 1, 3}), 5);
}

TEST(Point, HashDistinguishesCoordinates) {
    std::unordered_set<Point> set{{0, 0}, {0, 1}, {1, 0}};
    EXPECT_EQ(set.size(), 3u);
    EXPECT_TRUE(set.contains(Point{1, 0}));
    EXPECT_FALSE(set.contains(Point{1, 1}));
}

TEST(Rect, ContainsAndOverlaps) {
    const Rect r{{0, 0}, {4, 3}};
    EXPECT_TRUE(r.contains({0, 0}));
    EXPECT_TRUE(r.contains({4, 3}));
    EXPECT_FALSE(r.contains({5, 3}));
    EXPECT_TRUE(r.overlaps(Rect{{4, 3}, {6, 6}}));  // closed rects touch
    EXPECT_FALSE(r.overlaps(Rect{{5, 4}, {6, 6}}));
}

TEST(Rect, ExpandGrows) {
    Rect r{{2, 2}, {2, 2}};
    r.expand({0, 5});
    EXPECT_EQ(r.lo, (Point{0, 2}));
    EXPECT_EQ(r.hi, (Point{2, 5}));
}

TEST(Rect, BoundingNormalizesCorners) {
    const Rect r = Rect::bounding({5, 1}, {2, 4});
    EXPECT_EQ(r.lo, (Point{2, 1}));
    EXPECT_EQ(r.hi, (Point{5, 4}));
}

TEST(Segment, OrientationPredicates) {
    EXPECT_TRUE((Segment{{0, 0}, {5, 0}}.horizontal()));
    EXPECT_TRUE((Segment{{2, 1}, {2, 9}}.vertical()));
    EXPECT_TRUE((Segment{{1, 1}, {1, 1}}.degenerate()));
    EXPECT_FALSE((Segment{{0, 0}, {1, 1}}.rectilinear()));
}

TEST(Segment, CoversPointsOnRun) {
    const Segment s{{4, 2}, {0, 2}};
    EXPECT_TRUE(s.covers({0, 2}));
    EXPECT_TRUE(s.covers({2, 2}));
    EXPECT_TRUE(s.covers({4, 2}));
    EXPECT_FALSE(s.covers({5, 2}));
    EXPECT_FALSE(s.covers({2, 3}));
}

TEST(Segment, OverlapParallelSegments) {
    const auto o = overlap(Segment{{0, 0}, {5, 0}}, Segment{{3, 0}, {9, 0}});
    ASSERT_TRUE(o.has_value());
    EXPECT_EQ(o->a, (Point{3, 0}));
    EXPECT_EQ(o->b, (Point{5, 0}));
}

TEST(Segment, NoOverlapWhenMerelyTouching) {
    EXPECT_FALSE(overlap(Segment{{0, 0}, {3, 0}}, Segment{{3, 0}, {6, 0}}));
    EXPECT_FALSE(overlap(Segment{{0, 0}, {3, 0}}, Segment{{0, 1}, {3, 1}}));
    EXPECT_FALSE(overlap(Segment{{0, 0}, {3, 0}}, Segment{{1, 0}, {1, 5}}));
}

}  // namespace
}  // namespace streak::geom
