// Parameterized end-to-end sweep: the full primal-dual flow with post
// optimization on every synthetic suite, asserting the invariants the
// paper's evaluation relies on.
#include <gtest/gtest.h>

#include <map>

#include "flow/streak.hpp"
#include "gen/generator.hpp"

namespace streak {
namespace {

class SuiteSweep : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSweep, PdFlowInvariants) {
    const Design d = gen::makeSynth(GetParam());
    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();

    // Capacity legality is unconditional in Streak.
    EXPECT_EQ(r.metrics.totalOverflow, 0);
    EXPECT_EQ(r.metrics.overflowedEdges, 0);

    // The evaluation's headline properties.
    EXPECT_GE(r.metrics.routability, 0.9);
    EXPECT_GE(r.metrics.avgRegularity, 0.5);
    EXPECT_LE(r.metrics.avgRegularity, 1.0);
    EXPECT_LE(r.distanceViolationsAfter, r.distanceViolationsBefore);

    // Accounting: every bit is routed or listed unrouted, exactly once.
    EXPECT_EQ(r.routed.routedBits() +
                  static_cast<int>(r.routed.unroutedMembers.size()),
              d.numNets());

    // Every routed topology is a connected tree over its bit's pins with
    // trunk layers of the right direction.
    for (const RoutedBit& b : r.routed.bits) {
        EXPECT_TRUE(b.topo.connected());
        EXPECT_EQ(d.grid.layerDir(b.hLayer), grid::Dir::Horizontal);
        EXPECT_EQ(d.grid.layerDir(b.vLayer), grid::Dir::Vertical);
        for (const int dst : b.topo.sourceToSinkDistances()) {
            EXPECT_GE(dst, 0);
        }
    }

    // Objective is bounded below by the problem's certified bound.
    EXPECT_GE(r.solverSolution.objective, r.problem.costLowerBound() - 1e-9);
}

TEST_P(SuiteSweep, BitsInOneObjectShareTopologyShape) {
    const Design d = gen::makeSynth(GetParam());
    StreakOptions opts;
    const StreakResult r = runStreak(d, opts).value();
    // Solver-routed bits of one object carry equivalent topologies: same
    // wire-length spread only from stretching, but identical bend counts.
    std::map<int, std::vector<const RoutedBit*>> byObject;
    for (const RoutedBit& b : r.routed.bits) {
        if (b.clusterKey < r.problem.numObjects()) {
            byObject[b.objectIndex].push_back(&b);
        }
    }
    for (const auto& [obj, bits] : byObject) {
        for (size_t k = 1; k < bits.size(); ++k) {
            EXPECT_EQ(bits[k]->topo.bendCount(), bits[0]->topo.bendCount())
                << "object " << obj;
            EXPECT_EQ(bits[k]->hLayer, bits[0]->hLayer);
            EXPECT_EQ(bits[k]->vLayer, bits[0]->vLayer);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuiteSweep, ::testing::Range(1, 8));

}  // namespace
}  // namespace streak
