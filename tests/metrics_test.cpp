#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

struct Fixture {
    Design design;
    RoutingProblem prob;
    RoutedDesign routed;

    explicit Fixture(Design d, StreakOptions opts = {})
        : design(std::move(d)),
          prob(buildProblem(design, opts)),
          routed(materialize(prob, solvePrimalDual(prob).solution)) {}
};

TEST(Metrics, FullRoutabilityCounts) {
    Fixture r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 5, 0, 1)}));
    const Metrics m = evaluate(r.prob, r.routed);
    EXPECT_EQ(m.totalBits, 5);
    EXPECT_EQ(m.routedBits, 5);
    EXPECT_DOUBLE_EQ(m.routability, 1.0);
    EXPECT_EQ(m.wirelength, 5 * 12);
    EXPECT_EQ(m.totalOverflow, 0);
}

TEST(Metrics, UnroutedBitsEstimatedWithRsmt) {
    Fixture r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 3, 0, 1)}));
    // Pretend nothing was routed.
    RoutedDesign empty(r.design.grid);
    for (int k = 0; k < 3; ++k) empty.unroutedMembers.emplace_back(0, k);
    const Metrics m = evaluate(r.prob, empty);
    EXPECT_EQ(m.routedBits, 0);
    EXPECT_DOUBLE_EQ(m.routability, 0.0);
    // RSMT estimate equals the straight-line length here.
    EXPECT_EQ(m.wirelength, 3 * 12);
}

TEST(Metrics, SingleClusterGroupsExcludedFromReg) {
    Fixture r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)}));
    const Metrics m = evaluate(r.prob, r.routed);
    // One object -> one cluster -> no pair -> trivially 1.0.
    EXPECT_DOUBLE_EQ(m.avgRegularity, 1.0);
}

TEST(Metrics, TwoClusterGroupScoresPairRatio) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    d.groups[0].bits[2].pins[1] = {14, 12};
    d.groups[0].bits[3].pins[1] = {14, 13};
    Fixture r(std::move(d));
    const Metrics m = evaluate(r.prob, r.routed);
    EXPECT_GT(m.avgRegularity, 0.0);
    EXPECT_LE(m.avgRegularity, 1.0);
}

TEST(Metrics, OverflowSurfacesInMetrics) {
    Fixture r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 3, 0, 1)}));
    // Inject synthetic over-usage.
    const int e = r.design.grid.edgeId(0, 5, 4);
    r.routed.usage.add(e, r.design.grid.capacity(e) + 3);
    const Metrics m = evaluate(r.prob, r.routed);
    EXPECT_GE(m.totalOverflow, 3);
    EXPECT_GE(m.overflowedEdges, 1);
}

TEST(Metrics, EmptyDesign) {
    Design d = testutil::makeDesign({});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed(d.grid);
    const Metrics m = evaluate(prob, routed);
    EXPECT_EQ(m.totalBits, 0);
    EXPECT_DOUBLE_EQ(m.routability, 1.0);
    EXPECT_DOUBLE_EQ(m.avgRegularity, 1.0);
}

}  // namespace
}  // namespace streak
