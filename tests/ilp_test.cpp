#include "ilp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "ilp/lp.hpp"

namespace streak::ilp {
namespace {

constexpr double kTol = 1e-6;

TEST(SolveIlp, BinaryKnapsack) {
    // max 10a + 6b + 4c s.t. a+b+c <= 2 -> min form.
    Model m;
    const int a = m.addVariable(-10.0, true);
    const int b = m.addVariable(-6.0, true);
    const int c = m.addVariable(-4.0, true);
    m.addRow({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::LessEqual, 2.0);
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -16.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(a)], 1.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(b)], 1.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(c)], 0.0, kTol);
}

TEST(SolveIlp, RequiresBranching) {
    // Fractional LP optimum: min -(x+y) s.t. 2x + 2y <= 3, binary.
    Model m;
    const int x = m.addVariable(-1.0, true);
    const int y = m.addVariable(-1.0, true);
    m.addRow({{x, 2.0}, {y, 2.0}}, Sense::LessEqual, 3.0);
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -1.0, kTol);  // only one of x,y fits
}

TEST(SolveIlp, MixedIntegerContinuous) {
    // min 4x + y  s.t. x + y >= 1.5, x binary, y continuous.
    Model m;
    const int x = m.addVariable(4.0, true);
    const int y = m.addVariable(1.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 1.5);
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 1.5, kTol);  // x=0, y=1.5
}

TEST(SolveIlp, InfeasibleIntegerProblem) {
    // x + y = 1 with x = y forced by two inequalities and binary parity
    // conflict: x - y >= 0.5 impossible for binaries with x + y = 1 and
    // y >= x.
    Model m;
    const int x = m.addVariable(1.0, true);
    const int y = m.addVariable(1.0, true);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 1.0);
    m.addRow({{x, 1.0}, {y, -1.0}}, Sense::GreaterEqual, 0.5);
    m.addRow({{y, 1.0}, {x, -1.0}}, Sense::GreaterEqual, 0.5);
    EXPECT_EQ(solveIlp(m).status, SolveStatus::Infeasible);
}

TEST(SolveIlp, ProductLinearization) {
    // The Streak pattern: y >= x1 + x2 - 1 with positive cost on y makes
    // y the product of two chosen binaries.
    Model m;
    const int x1 = m.addVariable(-4.0, true);
    const int x2 = m.addVariable(-4.0, true);
    const int y = m.addVariable(3.0, false);
    m.addRow({{y, 1.0}, {x1, -1.0}, {x2, -1.0}}, Sense::GreaterEqual, -1.0);
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    // Both selected (-8) pays the pair penalty (+3) and still beats one
    // selected (-4); y is forced to 1 by the linearization row.
    EXPECT_NEAR(s.objective, -5.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(y)], 1.0, kTol);
}

TEST(SolveIlp, SelectionWithCapacity) {
    // 3 objects pick 1-of-2 candidates; capacity forces the expensive mix.
    Model m;
    std::vector<int> cheap, costly;
    for (int i = 0; i < 3; ++i) {
        cheap.push_back(m.addVariable(1.0, true));
        costly.push_back(m.addVariable(5.0, true));
        m.addRow({{cheap.back(), 1.0}, {costly.back(), 1.0}}, Sense::Equal,
                 1.0);
    }
    // All cheap candidates share an edge with capacity 2.
    m.addRow({{cheap[0], 1.0}, {cheap[1], 1.0}, {cheap[2], 1.0}},
             Sense::LessEqual, 2.0);
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 7.0, kTol);  // 1 + 1 + 5
}

TEST(SolveIlp, NodeLimitReportsFeasibleOrLimit) {
    Model m;
    // 12 coupled binaries with awkward fractional LP.
    std::vector<int> v;
    for (int i = 0; i < 12; ++i) v.push_back(m.addVariable(-1.0 - 0.01 * i, true));
    for (int i = 0; i + 1 < 12; ++i) {
        m.addRow({{v[static_cast<size_t>(i)], 2.0},
                  {v[static_cast<size_t>(i + 1)], 2.0}},
                 Sense::LessEqual, 3.0);
    }
    BnbOptions opts;
    opts.maxNodes = 3;
    BnbStats stats;
    const Solution s = solveIlp(m, opts, &stats);
    EXPECT_TRUE(s.status == SolveStatus::Feasible ||
                s.status == SolveStatus::Limit ||
                s.status == SolveStatus::Optimal);
    EXPECT_LE(stats.nodesExplored, 3);
}

TEST(SolveIlp, OptimalMatchesExhaustiveOnSmallInstance) {
    // 4 binaries, random-ish costs, one knapsack row: compare against
    // brute force.
    const double cost[4] = {3.0, -5.0, 2.0, -4.0};
    const double weight[4] = {2.0, 3.0, 1.0, 2.0};
    Model m;
    std::vector<int> v;
    std::vector<std::pair<int, double>> knap;
    for (int i = 0; i < 4; ++i) {
        v.push_back(m.addVariable(cost[i], true));
        knap.emplace_back(v.back(), weight[i]);
    }
    m.addRow(std::move(knap), Sense::LessEqual, 4.0);

    double best = 0.0;
    for (int mask = 0; mask < 16; ++mask) {
        double c = 0.0, w = 0.0;
        for (int i = 0; i < 4; ++i) {
            if (mask & (1 << i)) {
                c += cost[i];
                w += weight[i];
            }
        }
        if (w <= 4.0) best = std::min(best, c);
    }
    const Solution s = solveIlp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, best, kTol);
}

// ---------------------------------------------------------------------------
// Engine / warm-start equivalence at the branch-and-bound level
// ---------------------------------------------------------------------------

/// Streak-shaped selection model: groups of binary candidates, shared
/// capacities, and a pair-linearization term — the structure the ILP
/// router emits per component.
Model selectionModel(int groups, int seedOffset) {
    Model m;
    std::vector<int> vars;
    for (int g = 0; g < groups; ++g) {
        Row sel;
        for (int j = 0; j < 3; ++j) {
            const double cost = 1.0 + ((g * 7 + j * 3 + seedOffset) % 11);
            const int v = m.addVariable(cost, true);
            vars.push_back(v);
            sel.coeffs.emplace_back(v, 1.0);
        }
        sel.sense = Sense::Equal;
        sel.rhs = 1.0;
        m.addRow(std::move(sel));
    }
    Row cap;
    for (size_t k = 0; k < vars.size(); k += 2) {
        cap.coeffs.emplace_back(vars[k], 1.0);
    }
    cap.sense = Sense::LessEqual;
    cap.rhs = 1.0 + static_cast<double>(groups) / 2.0;
    m.addRow(std::move(cap));
    if (vars.size() >= 5) {
        const int y = m.addVariable(-2.0, false, 0.0, 1.0);
        m.addRow({{y, 1.0}, {vars[0], -1.0}, {vars[4], -1.0}},
                 Sense::GreaterEqual, -1.0);
    }
    return m;
}

TEST(SolveIlp, WarmStartAndEngineChoicesAgreeOnObjective) {
    for (int trial = 0; trial < 6; ++trial) {
        const Model m = selectionModel(2 + trial % 4, trial);

        BnbOptions warm;  // defaults: Bounded engine, warm starts on
        BnbOptions cold = warm;
        cold.lpWarmStart = false;
        BnbOptions legacy = warm;
        legacy.lpEngine = LpEngine::Legacy;

        const Solution a = solveIlp(m, warm);
        const Solution b = solveIlp(m, cold);
        const Solution c = solveIlp(m, legacy);
        ASSERT_EQ(a.status, SolveStatus::Optimal) << "trial " << trial;
        ASSERT_EQ(b.status, SolveStatus::Optimal) << "trial " << trial;
        ASSERT_EQ(c.status, SolveStatus::Optimal) << "trial " << trial;
        EXPECT_NEAR(a.objective, b.objective, kTol) << "trial " << trial;
        EXPECT_NEAR(a.objective, c.objective, kTol) << "trial " << trial;
    }
}

TEST(SolveIlp, WarmStartPreservesInfeasibilityProof) {
    Model m;
    const int x = m.addVariable(1.0, true);
    const int y = m.addVariable(1.0, true);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 1.0);
    m.addRow({{x, 1.0}, {y, -1.0}}, Sense::GreaterEqual, 0.5);
    m.addRow({{y, 1.0}, {x, -1.0}}, Sense::GreaterEqual, 0.5);
    BnbOptions warm;
    BnbOptions legacy;
    legacy.lpEngine = LpEngine::Legacy;
    EXPECT_EQ(solveIlp(m, warm).status, SolveStatus::Infeasible);
    EXPECT_EQ(solveIlp(m, legacy).status, SolveStatus::Infeasible);
}

}  // namespace
}  // namespace streak::ilp
