// Campaign store and diff logic (src/campaign), on hand-built records —
// no flow runs, so this suite stays in the fast tier. The slow
// campaign_sweep_test drives the real runner over shrunk suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/json.hpp"

namespace streak {
namespace {

namespace json = obs::json;

campaign::RunRecord sampleRecord() {
    campaign::RunRecord r;
    r.config = "pd";
    r.instance = "synth1-shrunk";
    r.threads = 0;
    r.threadsUsed = 2;
    r.problemHash = "0123456789abcdef";
    r.configHash = "fedcba9876543210";
    r.hostname = "host";
    r.hardwareThreads = 2;
    r.wallSeconds = 0.25;
    r.routability = 1.0;
    r.wirelength = 425;
    r.vias = 5;
    r.totalOverflow = 0;
    r.degraded = false;
    r.counters = {{"route/maze.pops", 1455}, {"ilp/lp.pivots", 16}};
    return r;
}

campaign::Store storeOf(const std::vector<campaign::RunRecord>& records) {
    campaign::Store store;
    store.records = records;
    return store;
}

TEST(CampaignStore, RecordsRoundTripThroughJsonl) {
    campaign::RunRecord a = sampleRecord();
    campaign::RunRecord b = sampleRecord();
    b.config = "ilp";
    b.wallSeconds = 1.5;
    b.degraded = true;
    std::ostringstream os;
    campaign::appendStore({a, b}, os);
    // JSONL: exactly one compact object per line.
    const std::string text = os.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);

    std::istringstream is(text);
    const campaign::Store store = campaign::readStore(is, "store");
    EXPECT_TRUE(store.problems.empty());
    ASSERT_EQ(store.records.size(), 2u);
    const campaign::RunRecord& back = store.records[0];
    EXPECT_EQ(back.config, a.config);
    EXPECT_EQ(back.instance, a.instance);
    EXPECT_EQ(back.threads, a.threads);
    EXPECT_EQ(back.threadsUsed, a.threadsUsed);
    EXPECT_EQ(back.problemHash, a.problemHash);
    EXPECT_EQ(back.configHash, a.configHash);
    EXPECT_EQ(back.hostname, a.hostname);
    EXPECT_EQ(back.hardwareThreads, a.hardwareThreads);
    EXPECT_DOUBLE_EQ(back.wallSeconds, a.wallSeconds);
    EXPECT_DOUBLE_EQ(back.routability, a.routability);
    EXPECT_EQ(back.wirelength, a.wirelength);
    EXPECT_EQ(back.vias, a.vias);
    EXPECT_EQ(back.totalOverflow, a.totalOverflow);
    EXPECT_EQ(back.degraded, a.degraded);
    EXPECT_EQ(back.counters, a.counters);
    EXPECT_TRUE(store.records[1].degraded);
}

TEST(CampaignStore, MalformedLinesBecomeStructuredProblems) {
    std::ostringstream os;
    campaign::appendStore({sampleRecord()}, os);
    const std::string good = os.str();
    const std::string text =
        "# comment line\n" + good +  // 2: valid
        "{\"truncated\": \n" +       // 3: JSON syntax error
        "[1, 2, 3]\n" +              // 4: not an object
        "{\"schema\": \"other\", \"schemaVersion\": 1}\n" +  // 5: schema
        "{\"schema\": \"streak-campaign-run\", \"schemaVersion\": 99}\n" +
        "{\"schema\": \"streak-campaign-run\", \"schemaVersion\": 1}\n";
    std::istringstream is(text);
    const campaign::Store store = campaign::readStore(is, "store");
    ASSERT_EQ(store.records.size(), 1u);
    ASSERT_EQ(store.problems.size(), 5u);
    EXPECT_NE(store.problems[0].find("store:3"), std::string::npos);
    EXPECT_NE(store.problems[1].find("not a JSON object"), std::string::npos);
    EXPECT_NE(store.problems[2].find("schema mismatch"), std::string::npos);
    EXPECT_NE(store.problems[3].find("schemaVersion mismatch"),
              std::string::npos);
    EXPECT_NE(store.problems[4].find("missing field"), std::string::npos);
}

TEST(CampaignDiff, IdenticalStoresAreClean) {
    const campaign::Store store = storeOf({sampleRecord()});
    const campaign::DiffReport report =
        campaign::diffAgainstStore(store, store);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.comparedRuns, 1);
    EXPECT_TRUE(report.notes.empty());
}

TEST(CampaignDiff, FlagsInjectedCounterRegression) {
    const campaign::Store baseline = storeOf({sampleRecord()});
    campaign::RunRecord cur = sampleRecord();
    cur.counters["route/maze.pops"] *= 2;  // the drill: 2x maze pops
    const campaign::DiffReport report =
        campaign::diffAgainstStore(baseline, storeOf({cur}));
    ASSERT_EQ(report.regressions.size(), 1u);
    const campaign::Regression& r = report.regressions.front();
    EXPECT_EQ(r.kind, "counter");
    EXPECT_EQ(r.metric, "route/maze.pops");
    EXPECT_DOUBLE_EQ(r.baseline, 1455.0);
    EXPECT_DOUBLE_EQ(r.current, 2910.0);
    EXPECT_NEAR(r.growthPercent, 100.0, 1e-9);
}

TEST(CampaignDiff, CounterGrowthBelowThresholdIsTolerated) {
    const campaign::Store baseline = storeOf({sampleRecord()});
    campaign::RunRecord cur = sampleRecord();
    cur.counters["route/maze.pops"] += 100;  // ~6.9% < 10%
    EXPECT_TRUE(
        campaign::diffAgainstStore(baseline, storeOf({cur})).ok());
}

TEST(CampaignDiff, FlagsQualityLossAtZeroTolerance) {
    const campaign::Store baseline = storeOf({sampleRecord()});
    campaign::RunRecord cur = sampleRecord();
    cur.wirelength += 1;
    cur.totalOverflow = 2;
    cur.routability = 0.9;
    cur.degraded = true;
    const campaign::DiffReport report =
        campaign::diffAgainstStore(baseline, storeOf({cur}));
    EXPECT_EQ(report.regressions.size(), 4u);
    for (const campaign::Regression& r : report.regressions) {
        EXPECT_EQ(r.kind, "quality") << r.metric;
    }
}

TEST(CampaignDiff, WallTimeUsesThresholdAndNoiseFloor) {
    campaign::RunRecord base = sampleRecord();
    campaign::RunRecord cur = sampleRecord();
    // Below the floor: even 10x growth is noise.
    base.wallSeconds = 0.004;
    cur.wallSeconds = 0.04;
    EXPECT_TRUE(
        campaign::diffAgainstStore(storeOf({base}), storeOf({cur})).ok());
    // Above the floor: +60% > the 50% threshold.
    base.wallSeconds = 0.5;
    cur.wallSeconds = 0.8;
    const campaign::DiffReport report =
        campaign::diffAgainstStore(storeOf({base}), storeOf({cur}));
    ASSERT_EQ(report.regressions.size(), 1u);
    EXPECT_EQ(report.regressions.front().kind, "wall");
    // +40% stays under it.
    cur.wallSeconds = 0.7;
    EXPECT_TRUE(
        campaign::diffAgainstStore(storeOf({base}), storeOf({cur})).ok());
}

TEST(CampaignDiff, ProvenanceMismatchIsSkippedWithANote) {
    const campaign::Store baseline = storeOf({sampleRecord()});
    campaign::RunRecord cur = sampleRecord();
    cur.problemHash = "ffffffffffffffff";
    cur.counters["route/maze.pops"] *= 10;  // would flag if compared
    const campaign::DiffReport report =
        campaign::diffAgainstStore(baseline, storeOf({cur}));
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.comparedRuns, 0);
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes.front().find("problem hash changed"),
              std::string::npos);
}

TEST(CampaignDiff, MissingBaselineIsANoteNotARegression) {
    campaign::RunRecord other = sampleRecord();
    other.instance = "synth2-shrunk";
    const campaign::DiffReport report = campaign::diffAgainstStore(
        storeOf({sampleRecord()}), storeOf({other}));
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.comparedRuns, 0);
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes.front().find("no baseline"), std::string::npos);
}

TEST(CampaignDiff, LastBaselineRecordWinsInAppendOnlyStores) {
    campaign::RunRecord old = sampleRecord();
    old.counters["route/maze.pops"] = 100;  // stale measurement
    const campaign::Store baseline = storeOf({old, sampleRecord()});
    EXPECT_TRUE(
        campaign::diffAgainstStore(baseline, storeOf({sampleRecord()})).ok());
}

/// Minimal streak-kernel-bench document with one ilp/lp entry.
json::Value benchDoc(const std::string& design, double pivots,
                     double wirelength) {
    json::Object counters;
    counters.set("ilp/lp.pivots", pivots);
    json::Object solution;
    solution.set("objective", 555);
    solution.set("routability", 1.0);
    solution.set("wirelength", wirelength);
    solution.set("totalOverflow", 0);
    json::Object after;
    after.set("counters", std::move(counters));
    after.set("solution", std::move(solution));
    json::Object entry;
    entry.set("kernel", "ilp/lp");
    entry.set("design", design);
    entry.set("after", std::move(after));
    json::Object doc;
    doc.set("schema", "streak-kernel-bench");
    doc.set("schemaVersion", 1);
    doc.set("kernels", json::Array{json::Value(std::move(entry))});
    return doc;
}

TEST(CampaignBenchDiff, ComparesIlpConfigAgainstTheAfterSide) {
    campaign::RunRecord run = sampleRecord();
    run.config = "ilp";
    const json::Value clean = benchDoc(run.instance, 16.0, 425.0);
    const campaign::DiffReport ok =
        campaign::diffAgainstBench(clean, storeOf({run}));
    EXPECT_TRUE(ok.ok()) << ok.regressions.front().metric;
    EXPECT_EQ(ok.comparedRuns, 1);

    // Pivots doubled vs the committed baseline -> counter regression;
    // wirelength above the baseline -> quality regression.
    const json::Value tight = benchDoc(run.instance, 8.0, 424.0);
    const campaign::DiffReport bad =
        campaign::diffAgainstBench(tight, storeOf({run}));
    ASSERT_EQ(bad.regressions.size(), 2u);
    EXPECT_EQ(bad.regressions[0].kind, "counter");
    EXPECT_EQ(bad.regressions[0].metric, "ilp/lp.pivots");
    EXPECT_EQ(bad.regressions[1].kind, "quality");
    EXPECT_EQ(bad.regressions[1].metric, "wirelength");
}

TEST(CampaignBenchDiff, NonIlpConfigsAndForeignDocsAreSkipped) {
    const campaign::RunRecord pdRun = sampleRecord();  // config "pd"
    const json::Value bench = benchDoc(pdRun.instance, 1.0, 1.0);
    const campaign::DiffReport skipped =
        campaign::diffAgainstBench(bench, storeOf({pdRun}));
    EXPECT_TRUE(skipped.ok());
    EXPECT_EQ(skipped.comparedRuns, 0);

    json::Object notABench;
    notABench.set("schema", "something-else");
    const campaign::DiffReport foreign = campaign::diffAgainstBench(
        json::Value(std::move(notABench)), storeOf({pdRun}));
    EXPECT_TRUE(foreign.ok());
    ASSERT_EQ(foreign.notes.size(), 1u);
    EXPECT_NE(foreign.notes.front().find("not a streak-kernel-bench"),
              std::string::npos);
}

TEST(CampaignVerdict, CarriesSchemaAndRegressionCount) {
    campaign::DiffReport clean;
    clean.against = "store";
    clean.comparedRuns = 3;
    campaign::DiffReport failed;
    failed.against = "bench";
    failed.comparedRuns = 1;
    failed.regressions.push_back({"counter", "ilp", "synth1-shrunk",
                                  "ilp/lp.pivots", 16.0, 32.0, 100.0});
    failed.notes.push_back("note text");

    const json::Value verdict = campaign::verdictJson({clean, failed});
    EXPECT_EQ(verdict.find("schema")->asString(), campaign::kVerdictSchema);
    EXPECT_EQ(static_cast<int>(verdict.find("schemaVersion")->asNumber()),
              campaign::kVerdictSchemaVersion);
    EXPECT_FALSE(verdict.find("ok")->asBool());
    EXPECT_EQ(static_cast<int>(verdict.find("regressionCount")->asNumber()),
              1);
    const json::Array& comparisons = verdict.find("comparisons")->asArray();
    ASSERT_EQ(comparisons.size(), 2u);
    EXPECT_TRUE(comparisons[0].find("ok")->asBool());
    EXPECT_FALSE(comparisons[1].find("ok")->asBool());
    const json::Value& reg =
        comparisons[1].find("regressions")->asArray().front();
    EXPECT_EQ(reg.find("metric")->asString(), "ilp/lp.pivots");
    EXPECT_DOUBLE_EQ(reg.find("growthPercent")->asNumber(), 100.0);

    // A fully clean verdict parses back as ok.
    const json::Value cleanVerdict = campaign::verdictJson({clean});
    EXPECT_TRUE(cleanVerdict.find("ok")->asBool());
    EXPECT_EQ(
        static_cast<int>(cleanVerdict.find("regressionCount")->asNumber()),
        0);
}

TEST(CampaignConfigs, BuiltinsAreNamedAndDistinct) {
    const std::vector<campaign::SweepConfig> configs =
        campaign::builtinConfigs();
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].name, "pd");
    EXPECT_EQ(configs[1].name, "pd-nopost");
    EXPECT_EQ(configs[2].name, "ilp");
    EXPECT_EQ(configs[3].name, "manual");
    EXPECT_TRUE(configs[3].manualBaseline);
    EXPECT_FALSE(configs[2].manualBaseline);
    // Distinct options hash distinctly (the provenance the diff trusts).
    EXPECT_NE(campaign::configHash(configs[0].options),
              campaign::configHash(configs[2].options));
    EXPECT_EQ(campaign::configByName("ilp").options.solver, SolverKind::Ilp);
    EXPECT_THROW((void)campaign::configByName("nope"), std::invalid_argument);
}

TEST(CampaignHash, Fnv1aMatchesKnownVectors) {
    EXPECT_EQ(campaign::fnv1aHex(""), "cbf29ce484222325");
    EXPECT_EQ(campaign::fnv1aHex("a"), "af63dc4c8601ec8c");
    EXPECT_NE(campaign::fnv1aHex("ab"), campaign::fnv1aHex("ba"));
}

}  // namespace
}  // namespace streak
