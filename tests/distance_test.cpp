#include "core/distance.hpp"

#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

/// Build a routed design by running the PD solver on a design.
struct Routed {
    Design design;
    RoutingProblem prob;
    RoutedDesign routed;

    explicit Routed(Design d, StreakOptions opts = {})
        : design(std::move(d)),
          prob(buildProblem(design, opts)),
          routed(materialize(prob, solvePrimalDual(prob).solution)) {}
};

TEST(AnalyzeDistances, UniformBusHasNoViolations) {
    Routed r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 5, 0, 1)}));
    const auto reports = analyzeDistances(r.prob, r.routed, 0.5);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].violatingFamilies, 0);
    EXPECT_EQ(countViolatingGroups(reports), 0);
}

TEST(AnalyzeDistances, ReportsPerGroup) {
    Routed r(testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 3, 0, 1, "a"),
         testutil::makeBusGroup({{2, 20}, {10, 20}}, 3, 0, 1, "b")}));
    const auto reports = analyzeDistances(r.prob, r.routed, 0.5);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].groupIndex, 0);
    EXPECT_EQ(reports[1].groupIndex, 1);
    EXPECT_GT(reports[0].maxInitialDistance, 0);
}

TEST(AnalyzeDistances, DetectsShortPinFamily) {
    // Fig. 4(b): one bit's sink is much closer than its siblings'.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {2, 0}}));    // short
    g.bits.push_back(testutil::makeBit({{0, 1}, {20, 1}}));   // long
    g.bits.push_back(testutil::makeBit({{0, 2}, {20, 2}}));   // long
    Routed r(testutil::makeDesign({g}));
    const auto reports = analyzeDistances(r.prob, r.routed, 0.5);
    ASSERT_EQ(reports.size(), 1u);
    // Deviation 18 > threshold (0.5 * 20 = 10).
    EXPECT_EQ(reports[0].violatingFamilies, 1);
    EXPECT_GE(reports[0].maxDeviation, 18);
    ASSERT_FALSE(reports[0].violations.empty());
    EXPECT_EQ(reports[0].violations[0].familyMax, 20);
}

TEST(AnalyzeDistances, ThresholdFractionScales) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {8, 0}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {14, 1}}));
    Routed r(testutil::makeDesign({g}));
    // Deviation 6; with fraction 0.5 threshold = 7 -> ok.
    EXPECT_EQ(countViolatingGroups(analyzeDistances(r.prob, r.routed, 0.5)), 0);
    // With fraction 0.2 threshold = 2 -> violation.
    EXPECT_EQ(countViolatingGroups(analyzeDistances(r.prob, r.routed, 0.2)), 1);
}

TEST(AnalyzeDistances, FixedThresholdsOverride) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {8, 0}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {14, 1}}));
    Routed r(testutil::makeDesign({g}));
    std::vector<int> thresholds{2};
    const auto reports =
        analyzeDistances(r.prob, r.routed, 0.5, &thresholds);
    EXPECT_EQ(reports[0].threshold, 2);
    EXPECT_EQ(countViolatingGroups(reports), 1);
}

TEST(AnalyzeDistances, CrossObjectFamiliesMatched) {
    // Two styles (objects) whose sinks correspond through SV matching.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {10, 0}}));          // style A
    g.bits.push_back(testutil::makeBit({{0, 1}, {10, 1}}));          // style A
    g.bits.push_back(testutil::makeBit({{0, 2}, {10, 6}}));          // style B (QI)
    Routed r(testutil::makeDesign({g}));
    const auto reports = analyzeDistances(r.prob, r.routed, 0.5);
    // Style B's sink is farther (10+4) but deviation 4 < threshold 7.
    EXPECT_EQ(countViolatingGroups(reports), 0);
}

TEST(AnalyzeDistances, EmptyRoutedDesign) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {10, 4}}, 3, 0, 1)});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign empty(d.grid);
    const auto reports = analyzeDistances(prob, empty, 0.5);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].violatingFamilies, 0);
}

}  // namespace
}  // namespace streak
