#include "timing/elmore.hpp"

#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "post/refine.hpp"
#include "test_util.hpp"
#include "timing/skew.hpp"

namespace streak::timing {
namespace {

using geom::Point;

steiner::Topology straightWire(int length) {
    steiner::Topology t({{0, 0}, {length, 0}}, 0);
    t.addSegment({{0, 0}, {length, 0}});
    return t;
}

TEST(Elmore, HandComputedTwoSegmentLine) {
    // Driver -(r,c)- mid -(r,c)- sink, unit wire RC, no vias.
    ElmoreParameters p;
    p.wireResistance = 1.0;
    p.wireCapacitance = 1.0;
    p.driverResistance = 0.0;
    p.viaResistance = 0.0;
    p.viaCapacitance = 0.0;
    p.sinkLoad = 0.0;
    const auto d = elmoreDelays(straightWire(2), p);
    // Pi model, unit RC per segment. Edge 1 charges the cap at/below the
    // mid node: 0.5 (its child-side half) + 1.0 (all of edge 2) = 1.5.
    // Edge 2 charges the cap at/below the sink: 0.5. Delay = 1.5 + 0.5.
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_DOUBLE_EQ(d[1], 2.0);
}

TEST(Elmore, DelayIncreasesWithLength) {
    ElmoreParameters p;
    double prev = 0.0;
    for (const int len : {2, 5, 9, 14}) {
        const auto d = elmoreDelays(straightWire(len), p);
        EXPECT_GT(d[1], prev);
        prev = d[1];
    }
}

TEST(Elmore, DriverResistanceChargesWholeTree) {
    ElmoreParameters base;
    base.driverResistance = 0.0;
    ElmoreParameters strong = base;
    strong.driverResistance = 10.0;
    const auto d0 = elmoreDelays(straightWire(4), base);
    const auto d1 = elmoreDelays(straightWire(4), strong);
    // Extra delay = Rd * total load, identical at every sink.
    EXPECT_GT(d1[1], d0[1]);
    EXPECT_DOUBLE_EQ(d1[0] - d0[0], d1[1] - d0[1]);
}

TEST(Elmore, ViasAddDelay) {
    // Same wire-length, one bend vs none.
    ElmoreParameters p;
    steiner::Topology bent({{0, 0}, {2, 2}}, 0);
    bent.addLShape({0, 0}, {2, 2}, {2, 0});
    const auto straight = elmoreDelays(straightWire(4), p);
    const auto withVia = elmoreDelays(bent, p);
    EXPECT_GT(withVia[1], straight[1]);
}

TEST(Elmore, SymmetricForkHasZeroSkew) {
    // Driver at the middle of a straight wire with symmetric sinks.
    steiner::Topology t({{5, 0}, {0, 0}, {10, 0}}, 0);
    t.addSegment({{0, 0}, {10, 0}});
    EXPECT_DOUBLE_EQ(sinkSkew(t), 0.0);
}

TEST(Elmore, AsymmetricForkHasPositiveSkew) {
    steiner::Topology t({{3, 0}, {0, 0}, {10, 0}}, 0);
    t.addSegment({{0, 0}, {10, 0}});
    EXPECT_GT(sinkSkew(t), 0.0);
}

TEST(Elmore, UnreachablePinGetsMinusOne) {
    steiner::Topology t({{0, 0}, {9, 9}}, 0);
    t.addSegment({{0, 0}, {3, 0}});
    const auto d = elmoreDelays(t);
    EXPECT_LT(d[1], 0.0);
    EXPECT_GE(d[0], 0.0);
}

TEST(GroupSkew, MatchedBusHasTinySkew) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
    const auto reports = analyzeGroupSkew(prob, routed);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_NEAR(reports[0].maxFamilySkew, 0.0, 1e-9);
    EXPECT_GT(reports[0].maxDelay, 0.0);
}

TEST(GroupSkew, ShortBitCreatesSkew) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {4, 0}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {20, 1}}));
    Design d = testutil::makeDesign({g});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
    const auto reports = analyzeGroupSkew(prob, routed);
    EXPECT_GT(reports[0].maxFamilySkew, 0.0);
}

TEST(GroupSkew, DistanceRefinementReducesDelaySkew) {
    // The motivation chain of the paper: matching distances should also
    // tighten Elmore skew.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{4, 10}, {8, 10}}));
    g.bits.push_back(testutil::makeBit({{4, 11}, {24, 11}}));
    g.bits.push_back(testutil::makeBit({{4, 12}, {24, 12}}));
    Design d = testutil::makeDesign({g});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
    const double before = analyzeGroupSkew(prob, routed)[0].maxFamilySkew;
    post::refineDistances(prob, &routed);
    const double after = analyzeGroupSkew(prob, routed)[0].maxFamilySkew;
    EXPECT_LT(after, before);
}

}  // namespace
}  // namespace streak::timing
