#include "steiner/rsmt.hpp"

#include <gtest/gtest.h>

#include <random>

namespace streak::steiner {
namespace {

using geom::Point;

TEST(RectilinearMST, TwoPoints) {
    const std::vector<Point> pts{{0, 0}, {3, 4}};
    const auto edges = rectilinearMST(pts);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(mstLength(pts), 7);
}

TEST(RectilinearMST, EmptyAndSingle) {
    EXPECT_TRUE(rectilinearMST({}).empty());
    EXPECT_TRUE(rectilinearMST({{1, 1}}).empty());
    EXPECT_EQ(mstLength({{1, 1}}), 0);
}

TEST(RectilinearMST, KnownSquare) {
    // Unit square corners: MST length 3.
    EXPECT_EQ(mstLength({{0, 0}, {1, 0}, {0, 1}, {1, 1}}), 3);
}

TEST(HananPoints, CrossingsExcludePins) {
    const auto pts = hananPoints({{0, 0}, {2, 3}});
    // 2x2 grid minus the 2 pins = 2 candidates.
    ASSERT_EQ(pts.size(), 2u);
    for (const Point p : pts) {
        EXPECT_TRUE((p == Point{0, 3}) || (p == Point{2, 0}));
    }
}

TEST(Iterated1Steiner, ClassicCrossGains) {
    // Four arms of a plus sign: the center Steiner point saves length.
    const std::vector<Point> pins{{0, 2}, {4, 2}, {2, 0}, {2, 4}};
    const auto steiner = iterated1Steiner(pins);
    ASSERT_EQ(steiner.size(), 1u);
    EXPECT_EQ(steiner[0], (Point{2, 2}));
    std::vector<Point> all = pins;
    all.push_back(steiner[0]);
    EXPECT_EQ(mstLength(all), 8);
    EXPECT_EQ(mstLength(pins), 12);
}

TEST(Iterated1Steiner, NoGainForCollinearPins) {
    const std::vector<Point> pins{{0, 0}, {3, 0}, {7, 0}};
    EXPECT_TRUE(iterated1Steiner(pins).empty());
}

TEST(RectifyTree, ProducesConnectedTopology) {
    const std::vector<Point> pins{{0, 0}, {5, 3}, {2, 6}};
    for (const LMode mode :
         {LMode::LowerFirst, LMode::UpperFirst, LMode::Adaptive}) {
        const Topology t = rectifyTree(pins, 0, {}, mode);
        EXPECT_TRUE(t.connected());
        EXPECT_GE(t.wirelength(), mstLength(pins) - 4);  // overlap can save
    }
}

TEST(EnumerateTopologies, AlwaysReturnsAtLeastOne) {
    const auto topos = enumerateTopologies({{0, 0}, {4, 4}}, 0);
    ASSERT_FALSE(topos.empty());
    for (const Topology& t : topos) {
        EXPECT_TRUE(t.isTree());
        EXPECT_EQ(t.wirelength(), 8);  // both L shapes are shortest
    }
}

TEST(EnumerateTopologies, DistinctLShapesForDiagonalPair) {
    const auto topos = enumerateTopologies({{0, 0}, {4, 4}}, 0);
    ASSERT_GE(topos.size(), 2u);
    EXPECT_NE(topos[0].wireHash(), topos[1].wireHash());
}

TEST(EnumerateTopologies, RespectsMaxCandidates) {
    EnumerateOptions opts;
    opts.maxCandidates = 1;
    const auto topos =
        enumerateTopologies({{0, 0}, {4, 4}, {8, 1}, {3, 7}}, 0, opts);
    EXPECT_EQ(topos.size(), 1u);
}

TEST(EnumerateTopologies, SortedByBendAwareCost) {
    EnumerateOptions opts;
    opts.bendPenalty = 3;
    const auto topos =
        enumerateTopologies({{0, 0}, {6, 2}, {1, 5}, {7, 7}}, 0, opts);
    for (size_t i = 1; i < topos.size(); ++i) {
        const int prev = topos[i - 1].wirelength() +
                         opts.bendPenalty * topos[i - 1].bendCount();
        const int cur =
            topos[i].wirelength() + opts.bendPenalty * topos[i].bendCount();
        EXPECT_LE(prev, cur);
    }
}

// ---- property sweep: random pin sets ----

class RsmtPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RsmtPropertyTest, TreesAreValidAndNoLongerThanMST) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_int_distribution<int> coord(0, 30);
    std::uniform_int_distribution<int> count(2, 9);
    const int n = count(rng);
    std::vector<Point> pins;
    for (int i = 0; i < n; ++i) pins.push_back({coord(rng), coord(rng)});

    const long mst = mstLength(pins);
    const auto topos = enumerateTopologies(pins, 0);
    ASSERT_FALSE(topos.empty());
    for (const Topology& t : topos) {
        EXPECT_TRUE(t.isTree()) << "seed " << GetParam();
        // Any rectilinear Steiner tree is at most the RMST length (our
        // enumeration starts from the RMST and only improves) and at least
        // 2/3 of it (the Hwang bound on RSMT/RMST).
        EXPECT_LE(t.wirelength(), mst);
        EXPECT_GE(3L * t.wirelength(), 2L * mst);
        // Covers every pin.
        for (size_t p = 0; p < pins.size(); ++p) {
            const auto d = t.sourceToSinkDistances();
            EXPECT_GE(d[p], 0);
        }
    }
}

TEST_P(RsmtPropertyTest, SteinerInsertionNeverHurts) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u);
    std::uniform_int_distribution<int> coord(0, 25);
    std::uniform_int_distribution<int> count(3, 8);
    const int n = count(rng);
    std::vector<Point> pins;
    for (int i = 0; i < n; ++i) pins.push_back({coord(rng), coord(rng)});

    const auto steiner = iterated1Steiner(pins);
    std::vector<Point> all = pins;
    all.insert(all.end(), steiner.begin(), steiner.end());
    EXPECT_LE(mstLength(all), mstLength(pins));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RsmtPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace streak::steiner
