// Golden end-to-end regression tables: frozen flow metrics for shrunk
// synth1-7 configurations. The flow is deterministic (including its
// parallel stages — see parallel_determinism_test), so any change in
// these numbers is a real behaviour change: either a regression or an
// intentional improvement that must be re-frozen and explained in the
// commit message.
//
// Regenerating after an intentional change (one command, from the repo
// root, after a dev-preset build):
//
//   STREAK_GOLDEN_REGEN=1 ./build/tests/golden_flow_test
//
// and paste the printed rows over the kGolden table below.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "flow/streak.hpp"
#include "gen/generator.hpp"

namespace streak {
namespace {

struct GoldenRow {
    int suite;  // synthSpec index
    int totalBits;
    int routedBits;
    long wirelength;
    double avgRegularity;
    long totalOverflow;
    long totalViaOverflow;
    int violationsBefore;
    int violationsAfter;
};

/// Shrunk synth suites so the whole table runs in seconds: fewer groups
/// on a smaller grid, everything else (style mix, blockages, multipin
/// fractions, seeds) exactly as in the full suites.
gen::SuiteSpec goldenSpec(int suite) {
    gen::SuiteSpec spec = gen::synthSpec(suite);
    spec.numGroups = 5;
    spec.gridWidth = 48;
    spec.gridHeight = 48;
    spec.numBlockages = spec.numBlockages < 3 ? spec.numBlockages : 3;
    return spec;
}

GoldenRow measure(int suite) {
    const Design d = gen::generate(goldenSpec(suite));
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();
    GoldenRow row;
    row.suite = suite;
    row.totalBits = r.metrics.totalBits;
    row.routedBits = r.metrics.routedBits;
    row.wirelength = r.metrics.wirelength;
    row.avgRegularity = r.metrics.avgRegularity;
    row.totalOverflow = r.metrics.totalOverflow;
    row.totalViaOverflow = r.metrics.totalViaOverflow;
    row.violationsBefore = r.distanceViolationsBefore;
    row.violationsAfter = r.distanceViolationsAfter;
    return row;
}

// Frozen with the primal-dual solver and full post optimization.
constexpr GoldenRow kGolden[] = {
    {1, 42, 42, 571, 1, 0, 0, 1, 0},
    {2, 37, 37, 438, 1, 0, 0, 0, 0},
    {3, 34, 34, 511, 1, 0, 0, 0, 0},
    {4, 60, 60, 887, 1, 0, 0, 1, 0},
    {5, 41, 41, 752, 0.875, 0, 0, 2, 1},
    {6, 109, 107, 1651, 0.78642857142857148, 0, 0, 2, 3},
    {7, 67, 67, 1036, 0.875, 0, 0, 3, 0},
};

bool regenRequested() {
    const char* env = std::getenv("STREAK_GOLDEN_REGEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenFlow, MetricsMatchFrozenTable) {
    if (regenRequested()) {
        for (const GoldenRow& expected : kGolden) {
            const GoldenRow got = measure(expected.suite);
            std::printf("    {%d, %d, %d, %ld, %.17g, %ld, %ld, %d, %d},\n",
                        got.suite, got.totalBits, got.routedBits,
                        got.wirelength, got.avgRegularity, got.totalOverflow,
                        got.totalViaOverflow, got.violationsBefore,
                        got.violationsAfter);
        }
        GTEST_SKIP() << "regenerated rows printed; paste over kGolden";
    }
    for (const GoldenRow& expected : kGolden) {
        SCOPED_TRACE("synth" + std::to_string(expected.suite));
        const GoldenRow got = measure(expected.suite);
        EXPECT_EQ(got.totalBits, expected.totalBits);
        EXPECT_EQ(got.routedBits, expected.routedBits);
        EXPECT_EQ(got.wirelength, expected.wirelength);
        EXPECT_DOUBLE_EQ(got.avgRegularity, expected.avgRegularity);
        EXPECT_EQ(got.totalOverflow, expected.totalOverflow);
        EXPECT_EQ(got.totalViaOverflow, expected.totalViaOverflow);
        EXPECT_EQ(got.violationsBefore, expected.violationsBefore);
        EXPECT_EQ(got.violationsAfter, expected.violationsAfter);
    }
}

}  // namespace
}  // namespace streak
