// Thread-count invariance suite: the whole Streak flow must produce
// byte-identical results for any `threads` setting. Every parallel seam
// (candidate build, per-component ILP, distance analysis, refinement)
// reduces in fixed index order, so a run with 8 threads serializes to
// exactly the same string as the legacy sequential path (threads = 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "flow/streak.hpp"
#include "gen/generator.hpp"

namespace streak {
namespace {

/// Canonical serialization of everything the flow decides: solver choices,
/// metrics (exact doubles via hexfloat), distance violations and the full
/// routed design with wire edges in sorted order (the wire is stored as an
/// unordered_set, so iteration order must not leak into the string).
std::string serializeResult(const StreakResult& r) {
    std::ostringstream os;
    os << std::hexfloat;

    os << "chosen:";
    for (const int c : r.solverSolution.chosen) os << ' ' << c;
    os << "\nobjective: " << r.solverSolution.objective;
    os << "\nmetrics: " << r.metrics.totalBits << ' ' << r.metrics.routedBits
       << ' ' << r.metrics.routability << ' ' << r.metrics.wirelength << ' '
       << r.metrics.avgRegularity << ' ' << r.metrics.totalOverflow << ' '
       << r.metrics.overflowedEdges << ' ' << r.metrics.totalViaOverflow;
    os << "\nviolations: " << r.distanceViolationsBefore << " -> "
       << r.distanceViolationsAfter;

    os << "\nunrouted:";
    for (const auto& [obj, member] : r.routed.unroutedMembers) {
        os << ' ' << obj << '/' << member;
    }

    for (const RoutedBit& bit : r.routed.bits) {
        os << "\nbit g" << bit.groupIndex << " b" << bit.bitIndex << " obj"
           << bit.objectIndex << " m" << bit.memberIndex << " cluster"
           << bit.clusterKey << " layers " << bit.hLayer << '/' << bit.vLayer
           << " wire";
        std::vector<steiner::UnitEdge> edges(bit.topo.wire().begin(),
                                             bit.topo.wire().end());
        std::sort(edges.begin(), edges.end());
        for (const steiner::UnitEdge& e : edges) {
            os << ' ' << e.at.x << ',' << e.at.y << (e.horizontal ? 'H' : 'V');
        }
    }
    os << '\n';
    return os.str();
}

/// A scaled-down two-pin + multipin mix so the ILP variants finish fast.
gen::SuiteSpec smallSpec(bool multipin) {
    gen::SuiteSpec spec = gen::synthSpec(multipin ? 5 : 1);
    spec.numGroups = 6;
    spec.gridWidth = 48;
    spec.gridHeight = 48;
    return spec;
}

StreakResult runWithThreads(const Design& d, SolverKind solver, int threads) {
    StreakOptions opts;
    opts.solver = solver;
    opts.postOptimize = true;
    // Generous limit: determinism of the budget split is only guaranteed
    // while no component hits its cap, so keep comfortably under it.
    opts.ilpTimeLimitSeconds = 60.0;
    opts.threads = threads;
    return runStreak(d, opts).value();
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<SolverKind, bool>> {};

TEST_P(ParallelDeterminism, FlowIsThreadCountInvariant) {
    const auto [solver, multipin] = GetParam();
    const Design d = gen::generate(smallSpec(multipin));

    const StreakResult base = runWithThreads(d, solver, 1);
    const std::string baseline = serializeResult(base);
    EXPECT_EQ(base.threadsUsed, 1);
    EXPECT_GT(base.metrics.routedBits, 0);

    for (const int threads : {2, 8}) {
        const StreakResult r = runWithThreads(d, solver, threads);
        EXPECT_EQ(r.threadsUsed, threads);
        const std::string got = serializeResult(r);
        EXPECT_EQ(got, baseline)
            << "solver " << static_cast<int>(solver) << " with " << threads
            << " threads diverged from the sequential path";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, ParallelDeterminism,
    ::testing::Combine(::testing::Values(SolverKind::PrimalDual,
                                         SolverKind::Ilp,
                                         SolverKind::IlpHierarchical),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ParallelDeterminism::ParamType>& info) {
        const SolverKind solver = std::get<0>(info.param);
        const std::string name =
            solver == SolverKind::Ilp               ? "Ilp"
            : solver == SolverKind::IlpHierarchical ? "IlpHierarchical"
                                                    : "PrimalDual";
        return name + (std::get<1>(info.param) ? "Multipin" : "TwoPin");
    });

TEST(ParallelDeterminism, RepeatedRunsAreIdentical) {
    // Same thread count twice: catches nondeterminism that thread-count
    // sweeps alone can miss (e.g. time-dependent tie breaking).
    const Design d = gen::generate(smallSpec(false));
    const std::string a =
        serializeResult(runWithThreads(d, SolverKind::PrimalDual, 8));
    const std::string b =
        serializeResult(runWithThreads(d, SolverKind::PrimalDual, 8));
    EXPECT_EQ(a, b);
}

TEST(ParallelDeterminism, StatsReflectRequestedThreads) {
    const Design d = gen::generate(smallSpec(false));
    const StreakResult r = runWithThreads(d, SolverKind::PrimalDual, 2);
    EXPECT_EQ(r.buildParallel().threads, 2);
    EXPECT_GT(r.buildParallel().regions, 0);
    EXPECT_GT(r.distanceParallel().tasks, 0);
}

}  // namespace
}  // namespace streak
