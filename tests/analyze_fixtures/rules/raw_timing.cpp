// Fixture: raw-timing (fixture paths sit outside src/, so no exemption).
#include <chrono>
long fire() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
long waived() {
    return std::chrono::system_clock::now().time_since_epoch().count();  // analyze-ok: raw-timing
}
// analyze-ok: raw-timing
