// Fixture: a header missing #pragma once (the finding lands on line 1).
inline int one() { return 1; }
