// analyze-ok: pragma-once — legacy header kept guard-free on purpose.
inline int two() { return 2; }
