// Fixture: raw-new-delete; `= delete` member syntax must stay silent.
struct NoCopy {
    NoCopy(const NoCopy&) = delete;
};
int* fireNew() { return new int(3); }
void fireDelete(int* p) { delete p; }
int* waived() { return new int(4); }  // analyze-ok: raw-new-delete
// analyze-ok: raw-new-delete
