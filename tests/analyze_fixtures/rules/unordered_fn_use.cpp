// Fixture: consumes unordered_fn.hpp's edges() from another file.
#include "unordered_fn.hpp"
int countEdges() {
    int n = 0;
    for (int e : edges()) n += e;
    return n;
}
