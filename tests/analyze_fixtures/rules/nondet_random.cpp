// Fixture: nondet-random; explicitly seeded engines are fine.
#include <random>
std::random_device fire;
std::mt19937 fireUnseeded;
std::mt19937 seededIsFine{42};
std::mt19937 waived;  // analyze-ok: nondet-random
// analyze-ok: nondet-random
