#pragma once
// Fixture: functions returning unordered containers are visible to every
// scanned file, not just their own translation unit.
#include <unordered_set>
std::unordered_set<int> edges();
