// Fixture: obs-global-registry (fixture paths sit outside src/, so the
// src/obs exemption does not apply).
#include "obs/counters.hpp"
void fire() {
    obs::counter("route/maze.pops").add(1);
    obs::histogram("route/edge.utilization_pct", {10}).record(3);
}
void sanctioned() {
    obs::session().counter("route/maze.pops").add(1);
}
void waived() {
    obs::counter("route/maze.pops").add(1);  // analyze-ok: obs-global-registry
}
// analyze-ok: obs-global-registry
