// Fixture: iterating a member declared unordered in the companion header.
#include "unordered_header.hpp"
int sumOf(const Holder& h) {
    int sum = 0;
    for (int v : h.stuff_) sum += v;
    return sum;
}
