// Fixture: banned-function — fire, waive, stale waiver.
#include <cstdio>

int fire(char* buf) { return std::sprintf(buf, "x"); }
int waived(char* buf) { return std::sprintf(buf, "y"); }  // analyze-ok: banned-function
// analyze-ok: banned-function
