// Fixture: relative-include.
#include "../escape/hatch.hpp"
#include "./sibling.hpp"  // analyze-ok: relative-include
// analyze-ok: relative-include
