// Fixture: pointer-keyed containers; pointer mapped values are fine.
#include <map>
#include <set>
struct Node;
std::map<Node*, int> fire;
std::set<const Node*> fire2;
std::map<int, Node*> valueIsFine;
std::map<Node*, int> waived;  // analyze-ok: pointer-keyed
// analyze-ok: pointer-keyed
