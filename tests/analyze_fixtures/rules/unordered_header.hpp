#pragma once
// Fixture: the companion header declares the unordered member that the
// .cpp of the same name iterates.
#include <unordered_set>
struct Holder {
    std::unordered_set<int> stuff_;
};
