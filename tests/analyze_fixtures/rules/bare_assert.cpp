// Fixture: bare-assert — the include and the call both fire.
#include <cassert>
void fire(int x) { assert(x > 0); }
void waived(int x) { assert(x > 0); }  // analyze-ok: bare-assert
// analyze-ok: bare-assert
