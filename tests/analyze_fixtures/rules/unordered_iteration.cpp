// Fixture: unordered-iteration over a locally declared container.
#include <unordered_set>
namespace fx {
std::unordered_set<int> bag;
int fire() {
    int sum = 0;
    for (int v : bag) sum += v;
    return sum;
}
int waived() {
    int sum = 0;
    for (int v : bag) sum += v;  // analyze-ok: unordered-iteration
    return sum;
}
}  // namespace fx
// analyze-ok: unordered-iteration
