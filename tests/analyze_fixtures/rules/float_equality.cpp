// Fixture: float-equality, including the legacy float-eq alias.
bool fire(double x) { return x == 0.5; }
bool waived(double x) { return x != 1.0; }  // analyze-ok: float-equality
bool aliasWaived(double x) { return x == 2.5; }  // lint-ok: float-eq
// analyze-ok: float-equality
