// Fixture: thread-state (fixture paths sit outside src/, so no exemption).
#include <thread>
thread_local int fire = 0;
auto fireId() { return std::this_thread::get_id(); }
thread_local int waived = 0;  // analyze-ok: thread-state
// analyze-ok: thread-state
