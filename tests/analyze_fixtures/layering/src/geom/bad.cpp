// Layering fixture: geom reaching up into flow must be rejected.
#include "flow/streak.hpp"
#include "geom/ok.hpp"
