#pragma once
// Layering fixture: a quiet geom header.
inline int geomOk() { return 0; }
