#pragma once
// Layering fixture: the upper module that geom may not include.
inline int flowTop() { return 1; }
