#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "core/identify.hpp"

namespace streak::gen {
namespace {

TEST(Generator, DeterministicInSeed) {
    const SuiteSpec spec = synthSpec(1);
    const Design a = generate(spec);
    const Design b = generate(spec);
    ASSERT_EQ(a.numGroups(), b.numGroups());
    ASSERT_EQ(a.numNets(), b.numNets());
    for (int g = 0; g < a.numGroups(); ++g) {
        for (int k = 0; k < a.groups[static_cast<size_t>(g)].width(); ++k) {
            EXPECT_EQ(a.groups[static_cast<size_t>(g)].bits[static_cast<size_t>(k)].pins,
                      b.groups[static_cast<size_t>(g)].bits[static_cast<size_t>(k)].pins);
        }
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    SuiteSpec spec = synthSpec(1);
    const Design a = generate(spec);
    spec.seed += 1;
    const Design b = generate(spec);
    bool anyDifferent = false;
    for (int g = 0; g < std::min(a.numGroups(), b.numGroups()); ++g) {
        if (a.groups[static_cast<size_t>(g)].bits[0].pins !=
            b.groups[static_cast<size_t>(g)].bits[0].pins) {
            anyDifferent = true;
        }
    }
    EXPECT_TRUE(anyDifferent);
}

TEST(Generator, PinsInsideGrid) {
    for (int i = 1; i <= 7; ++i) {
        const Design d = makeSynth(i);
        for (const SignalGroup& g : d.groups) {
            for (const Bit& b : g.bits) {
                for (const geom::Point p : b.pins) {
                    EXPECT_TRUE(d.grid.contains(p))
                        << d.name << " pin " << p;
                }
                EXPECT_GE(b.numPins(), 2);
            }
        }
    }
}

TEST(Generator, TwoPinSuitesAreTwoPin) {
    for (int i = 1; i <= 4; ++i) {
        EXPECT_EQ(makeSynth(i).maxPins(), 2) << "synth" << i;
    }
}

TEST(Generator, MultipinSuitesExceedTwoPins) {
    for (int i = 5; i <= 7; ++i) {
        const Design d = makeSynth(i);
        EXPECT_GT(d.maxPins(), 2) << "synth" << i;
        EXPECT_LE(d.maxPins(), synthSpec(i).maxPins);
    }
}

TEST(Generator, GroupWidthsWithinSpec) {
    for (int i = 1; i <= 7; ++i) {
        const SuiteSpec spec = synthSpec(i);
        const Design d = generate(spec);
        EXPECT_EQ(d.numGroups(), spec.numGroups);
        for (const SignalGroup& g : d.groups) {
            EXPECT_GE(g.width(), spec.minGroupWidth);
            EXPECT_LE(g.width(), spec.maxGroupWidth);
        }
    }
}

TEST(Generator, GroupsSplitIntoFewObjects) {
    // Style-based construction: identification should find 1-2 objects
    // for most groups, never one object per bit.
    const Design d = makeSynth(5);
    const auto objects = identifyObjects(d);
    EXPECT_LT(static_cast<int>(objects.size()), d.numNets() / 2);
    EXPECT_GE(static_cast<int>(objects.size()), d.numGroups());
}

TEST(Generator, BlockagesDentCapacity) {
    const SuiteSpec spec = synthSpec(3);
    const Design d = generate(spec);
    int dented = 0;
    for (int e = 0; e < d.grid.numEdges(); ++e) {
        if (d.grid.capacity(e) < spec.capacity) ++dented;
    }
    EXPECT_GT(dented, 0);
}

TEST(Generator, ScalabilitySeriesGrows) {
    const auto specs = scalabilitySpecs(false, 4);
    ASSERT_EQ(specs.size(), 4u);
    long prevPins = 0;
    for (const SuiteSpec& s : specs) {
        const Design d = generate(s);
        EXPECT_GT(d.totalPins(), prevPins);
        prevPins = d.totalPins();
    }
}

TEST(Generator, MultipinSeriesEnrichesLastStep) {
    const auto specs = scalabilitySpecs(true, 3);
    EXPECT_GT(specs.back().maxPins, synthSpec(5).maxPins);
}

TEST(Generator, RejectsBadSpecs) {
    EXPECT_THROW(synthSpec(0), std::invalid_argument);
    EXPECT_THROW(synthSpec(8), std::invalid_argument);
    SuiteSpec bad;
    bad.maxPins = 1;
    EXPECT_THROW(generate(bad), std::invalid_argument);
}

}  // namespace
}  // namespace streak::gen
