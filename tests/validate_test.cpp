#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;
using Severity = ValidationIssue::Severity;

int countErrors(const std::vector<ValidationIssue>& issues) {
    int n = 0;
    for (const auto& i : issues) n += i.severity == Severity::Error ? 1 : 0;
    return n;
}

TEST(Validate, CleanDesignHasNoIssues) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 4, 0, 1)});
    const auto issues = validateDesign(d);
    EXPECT_TRUE(issues.empty());
    EXPECT_TRUE(isRoutable(issues));
}

TEST(Validate, GeneratedSuitesAreRoutable) {
    for (int i = 1; i <= 7; ++i) {
        const auto issues = validateDesign(gen::makeSynth(i));
        EXPECT_TRUE(isRoutable(issues)) << "synth" << i;
    }
}

TEST(Validate, PinOutsideGridIsError) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 2, 0, 1)}, 16, 16);
    d.groups[0].bits[0].pins[1] = {40, 4};
    const auto issues = validateDesign(d);
    EXPECT_EQ(countErrors(issues), 1);
    EXPECT_FALSE(isRoutable(issues));
}

TEST(Validate, BadDriverIndexIsError) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 2, 0, 1)});
    d.groups[0].bits[1].driver = 7;
    EXPECT_FALSE(isRoutable(validateDesign(d)));
}

TEST(Validate, SinglePinBitIsError) {
    SignalGroup g;
    Bit b;
    b.name = "lonely";
    b.pins = {{3, 3}};
    b.driver = 0;
    g.name = "g";
    g.bits.push_back(std::move(b));
    EXPECT_FALSE(isRoutable(validateDesign(testutil::makeDesign({g}))));
}

TEST(Validate, EmptyGroupIsError) {
    SignalGroup g;
    g.name = "empty";
    EXPECT_FALSE(isRoutable(validateDesign(testutil::makeDesign({g}))));
}

TEST(Validate, DuplicatePinIsWarningOnly) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}, {14, 4}}, 2, 0, 1)});
    const auto issues = validateDesign(d);
    EXPECT_FALSE(issues.empty());
    EXPECT_TRUE(isRoutable(issues));  // warnings don't block routing
}

TEST(Validate, NegativeDriverIndexIsError) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 2, 0, 1)});
    d.groups[0].bits[0].driver = -1;
    const auto issues = validateDesign(d);
    EXPECT_EQ(countErrors(issues), 1);
    EXPECT_FALSE(isRoutable(issues));
}

TEST(Validate, DuplicatePinAcrossGroupsIsWarning) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 2, 0, 1, "bus_a"),
         testutil::makeBusGroup({{2, 4}, {20, 8}}, 2, 0, 1, "bus_b")});
    const auto issues = validateDesign(d);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(countErrors(issues), 0);
    EXPECT_TRUE(isRoutable(issues));  // suspicious, not fatal
    bool mentionsOwner = false;
    for (const auto& i : issues) {
        mentionsOwner |= i.message.find("also used by group 'bus_a'") !=
                         std::string::npos;
    }
    EXPECT_TRUE(mentionsOwner);
}

TEST(Validate, DistinctGroupsShareNoPinWarning) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 2, 0, 1, "bus_a"),
         testutil::makeBusGroup({{2, 10}, {14, 10}}, 2, 0, 1, "bus_b")});
    EXPECT_TRUE(validateDesign(d).empty());
}

TEST(Validate, GroupWiderThanEveryLayerIsWarning) {
    // Capacity 3 everywhere, group of 8 bits: no single edge can carry the
    // whole bus, which the validator flags before any routing is attempted.
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 8, 0, 1)}, 32, 32, 4, 3);
    const auto issues = validateDesign(d);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, Severity::Warning);
    EXPECT_NE(issues[0].message.find("wider"), std::string::npos);
    EXPECT_TRUE(isRoutable(issues));
}

TEST(Validate, OverWideGroupIsWarning) {
    const Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {14, 4}}, 12, 0, 1)}, 32, 32, 4, 4);
    const auto issues = validateDesign(d);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].severity, Severity::Warning);
    EXPECT_TRUE(isRoutable(issues));
}

}  // namespace
}  // namespace streak
