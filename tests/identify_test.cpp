#include "core/identify.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(IdentifyObjects, UniformBusIsOneObject) {
    const SignalGroup g =
        testutil::makeBusGroup({{0, 10}, {8, 10}}, 6, 0, 1);
    const auto objects = identifyObjects(g, 0);
    ASSERT_EQ(objects.size(), 1u);
    EXPECT_EQ(objects[0].width(), 6);
    EXPECT_EQ(objects[0].groupIndex, 0);
}

TEST(IdentifyObjects, TwoStylesSplit) {
    // Fig. 1 / Fig. 3(a): half the bits route +x, half route +x then +y.
    SignalGroup g;
    g.name = "mixed";
    for (int k = 0; k < 3; ++k) {
        g.bits.push_back(testutil::makeBit({{0, k}, {8, k}}));
    }
    for (int k = 3; k < 6; ++k) {
        g.bits.push_back(testutil::makeBit({{0, k}, {8, k + 5}}));
    }
    const auto objects = identifyObjects(g, 0);
    ASSERT_EQ(objects.size(), 2u);
    EXPECT_EQ(objects[0].width() + objects[1].width(), 6);
    // Bits must not be shared between objects.
    std::set<int> seen;
    for (const auto& obj : objects) {
        for (const int b : obj.bitIndices) {
            EXPECT_TRUE(seen.insert(b).second);
        }
    }
}

TEST(IdentifyObjects, DriverSvSeparatesEarly) {
    // Same sink multiset shape but opposite directions -> different
    // driver SVs -> different objects.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{5, 5}, {9, 5}}));   // sink +x
    g.bits.push_back(testutil::makeBit({{5, 6}, {1, 6}}));   // sink -x
    const auto objects = identifyObjects(g, 0);
    EXPECT_EQ(objects.size(), 2u);
}

TEST(IdentifyObjects, StretchedBitsStillIsomorphic) {
    // Same directional structure, different sink distances: one object.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {6, 0}, {6, 4}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {9, 1}, {9, 7}}));
    const auto objects = identifyObjects(g, 0);
    EXPECT_EQ(objects.size(), 1u);
}

TEST(IdentifyObjects, DifferentPinCountsSplit) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {6, 0}}));
    g.bits.push_back(testutil::makeBit({{0, 1}, {6, 1}, {6, 5}}));
    const auto objects = identifyObjects(g, 0);
    EXPECT_EQ(objects.size(), 2u);
}

TEST(IdentifyObjects, PinMapsAreConsistentBijections) {
    const SignalGroup g = testutil::makeBusGroup(
        {{0, 0}, {7, 0}, {7, 6}, {3, 6}}, 5, 0, 1);
    const auto objects = identifyObjects(g, 0);
    ASSERT_EQ(objects.size(), 1u);
    const RoutingObject& obj = objects[0];
    ASSERT_EQ(obj.pinMaps.size(), 5u);
    const int repBit =
        obj.bitIndices[static_cast<size_t>(obj.representativeBit)];
    const Bit& rep = g.bits[static_cast<size_t>(repBit)];
    for (size_t k = 0; k < obj.pinMaps.size(); ++k) {
        const Bit& bit =
            g.bits[static_cast<size_t>(obj.bitIndices[k])];
        const auto& map = obj.pinMaps[k];
        ASSERT_EQ(map.size(), bit.pins.size());
        std::set<int> targets(map.begin(), map.end());
        EXPECT_EQ(targets.size(), map.size());  // bijection
        // Drivers map to drivers.
        EXPECT_EQ(map[static_cast<size_t>(bit.driver)], rep.driver);
        // Mapped pins share SVs.
        for (int i = 0; i < bit.numPins(); ++i) {
            EXPECT_EQ(pinSimilarity(bit, i),
                      pinSimilarity(rep, map[static_cast<size_t>(i)]));
        }
    }
}

TEST(IdentifyObjects, RepresentativeIsMedianDriver) {
    const SignalGroup g = testutil::makeBusGroup({{0, 0}, {5, 0}}, 7, 0, 1);
    const auto objects = identifyObjects(g, 0);
    ASSERT_EQ(objects.size(), 1u);
    const int repBit = objects[0].bitIndices[static_cast<size_t>(
        objects[0].representativeBit)];
    // Drivers at y = 0..6; the median driver sits at y = 3.
    EXPECT_EQ(g.bits[static_cast<size_t>(repBit)].driverPin().y, 3);
}

TEST(IdentifyObjects, DesignWideConcatenation) {
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{0, 0}, {5, 0}}, 3, 0, 1, "a"),
         testutil::makeBusGroup({{10, 10}, {10, 18}}, 4, 1, 0, "b")});
    const auto objects = identifyObjects(d);
    ASSERT_EQ(objects.size(), 2u);
    EXPECT_EQ(objects[0].groupIndex, 0);
    EXPECT_EQ(objects[1].groupIndex, 1);
}

TEST(IdentifyObjects, SingleBitGroup) {
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {4, 4}}));
    const auto objects = identifyObjects(g, 3);
    ASSERT_EQ(objects.size(), 1u);
    EXPECT_EQ(objects[0].width(), 1);
    EXPECT_EQ(objects[0].groupIndex, 3);
}

}  // namespace
}  // namespace streak
