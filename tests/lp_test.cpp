#include "ilp/lp.hpp"

#include <gtest/gtest.h>

namespace streak::ilp {
namespace {

constexpr double kTol = 1e-6;

TEST(SolveLp, SimpleTwoVariable) {
    // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
    Model m;
    const int x = m.addVariable(-1.0, false, 0.0, 3.0);
    const int y = m.addVariable(-2.0, false, 0.0, 2.0);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 4.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -6.0, kTol);  // x=2, y=2
    EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(y)], 2.0, kTol);
}

TEST(SolveLp, EqualityConstraint) {
    // min x + y  s.t. x + y = 5, x <= 2.
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 2.0);
    const int y = m.addVariable(1.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 5.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 5.0, kTol);
}

TEST(SolveLp, GreaterEqualRows) {
    // min 2x + 3y  s.t. x + y >= 4, x - y >= -1.
    Model m;
    const int x = m.addVariable(2.0, false);
    const int y = m.addVariable(3.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 4.0);
    m.addRow({{x, 1.0}, {y, -1.0}}, Sense::GreaterEqual, -1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 8.0, kTol);  // x=4, y=0
}

TEST(SolveLp, DetectsInfeasible) {
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 1.0);
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 2.0);
    EXPECT_EQ(solveLp(m).status, SolveStatus::Infeasible);
}

TEST(SolveLp, DetectsUnbounded) {
    Model m;
    const int x = m.addVariable(-1.0, false);  // min -x, x unbounded above
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 0.0);
    EXPECT_EQ(solveLp(m).status, SolveStatus::Unbounded);
}

TEST(SolveLp, HonorsLowerBounds) {
    // min x with x in [3, 10].
    Model m;
    const int x = m.addVariable(1.0, false, 3.0, 10.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, kTol);
    EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(SolveLp, ObjectiveConstantCarriesThrough) {
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 5.0);
    m.objectiveConstant = 100.0;
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 101.0, kTol);
}

TEST(SolveLp, DegenerateRedundantRows) {
    // Redundant equalities must not break phase 1.
    Model m;
    const int x = m.addVariable(1.0, false);
    const int y = m.addVariable(1.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 2.0);
    m.addRow({{x, 2.0}, {y, 2.0}}, Sense::Equal, 4.0);  // 2x the first
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(SolveLp, AssignmentRelaxationIsIntegral) {
    // One-of-three selection with distinct costs: LP relaxation of a
    // selection row picks the cheapest candidate.
    Model m;
    const int a = m.addVariable(5.0, false);
    const int b = m.addVariable(3.0, false);
    const int c = m.addVariable(9.0, false);
    m.addRow({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.values[static_cast<size_t>(b)], 1.0, kTol);
    EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(SolveLp, MediumRandomishProblemStaysFinite) {
    // A larger structured LP: 30 selection rows of 4 candidates with a
    // shared capacity row. Sanity check for stability, not optimality.
    Model m;
    std::vector<int> vars;
    for (int i = 0; i < 30; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < 4; ++j) {
            const int v = m.addVariable(1.0 + j + (i % 3), false);
            vars.push_back(v);
            row.emplace_back(v, 1.0);
        }
        m.addRow(std::move(row), Sense::Equal, 1.0);
    }
    std::vector<std::pair<int, double>> cap;
    for (size_t k = 0; k < vars.size(); k += 4) cap.emplace_back(vars[k], 1.0);
    m.addRow(std::move(cap), Sense::LessEqual, 10.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_GT(s.objective, 0.0);
    EXPECT_LT(s.objective, 1e6);
}

}  // namespace
}  // namespace streak::ilp
