#include "ilp/lp.hpp"

#include <gtest/gtest.h>

#include <random>

namespace streak::ilp {
namespace {

constexpr double kTol = 1e-6;

TEST(SolveLp, SimpleTwoVariable) {
    // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
    Model m;
    const int x = m.addVariable(-1.0, false, 0.0, 3.0);
    const int y = m.addVariable(-2.0, false, 0.0, 2.0);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 4.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -6.0, kTol);  // x=2, y=2
    EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, kTol);
    EXPECT_NEAR(s.values[static_cast<size_t>(y)], 2.0, kTol);
}

TEST(SolveLp, EqualityConstraint) {
    // min x + y  s.t. x + y = 5, x <= 2.
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 2.0);
    const int y = m.addVariable(1.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 5.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 5.0, kTol);
}

TEST(SolveLp, GreaterEqualRows) {
    // min 2x + 3y  s.t. x + y >= 4, x - y >= -1.
    Model m;
    const int x = m.addVariable(2.0, false);
    const int y = m.addVariable(3.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::GreaterEqual, 4.0);
    m.addRow({{x, 1.0}, {y, -1.0}}, Sense::GreaterEqual, -1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 8.0, kTol);  // x=4, y=0
}

TEST(SolveLp, DetectsInfeasible) {
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 1.0);
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 2.0);
    EXPECT_EQ(solveLp(m).status, SolveStatus::Infeasible);
}

TEST(SolveLp, DetectsUnbounded) {
    Model m;
    const int x = m.addVariable(-1.0, false);  // min -x, x unbounded above
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 0.0);
    EXPECT_EQ(solveLp(m).status, SolveStatus::Unbounded);
}

TEST(SolveLp, HonorsLowerBounds) {
    // min x with x in [3, 10].
    Model m;
    const int x = m.addVariable(1.0, false, 3.0, 10.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.values[static_cast<size_t>(x)], 3.0, kTol);
    EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(SolveLp, ObjectiveConstantCarriesThrough) {
    Model m;
    const int x = m.addVariable(1.0, false, 0.0, 5.0);
    m.objectiveConstant = 100.0;
    m.addRow({{x, 1.0}}, Sense::GreaterEqual, 1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 101.0, kTol);
}

TEST(SolveLp, DegenerateRedundantRows) {
    // Redundant equalities must not break phase 1.
    Model m;
    const int x = m.addVariable(1.0, false);
    const int y = m.addVariable(1.0, false);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::Equal, 2.0);
    m.addRow({{x, 2.0}, {y, 2.0}}, Sense::Equal, 4.0);  // 2x the first
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, 2.0, kTol);
}

TEST(SolveLp, AssignmentRelaxationIsIntegral) {
    // One-of-three selection with distinct costs: LP relaxation of a
    // selection row picks the cheapest candidate.
    Model m;
    const int a = m.addVariable(5.0, false);
    const int b = m.addVariable(3.0, false);
    const int c = m.addVariable(9.0, false);
    m.addRow({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.values[static_cast<size_t>(b)], 1.0, kTol);
    EXPECT_NEAR(s.objective, 3.0, kTol);
}

TEST(SolveLp, MediumRandomishProblemStaysFinite) {
    // A larger structured LP: 30 selection rows of 4 candidates with a
    // shared capacity row. Sanity check for stability, not optimality.
    Model m;
    std::vector<int> vars;
    for (int i = 0; i < 30; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < 4; ++j) {
            const int v = m.addVariable(1.0 + j + (i % 3), false);
            vars.push_back(v);
            row.emplace_back(v, 1.0);
        }
        m.addRow(std::move(row), Sense::Equal, 1.0);
    }
    std::vector<std::pair<int, double>> cap;
    for (size_t k = 0; k < vars.size(); k += 4) cap.emplace_back(vars[k], 1.0);
    m.addRow(std::move(cap), Sense::LessEqual, 10.0);
    const Solution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_GT(s.objective, 0.0);
    EXPECT_LT(s.objective, 1e6);
}

// ---------------------------------------------------------------------------
// Bounded-variable engine vs the legacy explicit-row oracle
// ---------------------------------------------------------------------------

/// Random small model with mostly-finite upper bounds: the shapes where
/// the bounded engine's implicit bound handling diverges most from the
/// legacy one-row-per-bound formulation.
Model randomModel(std::mt19937* rng) {
    std::uniform_int_distribution<int> varCount(2, 6);
    std::uniform_int_distribution<int> rowCount(1, 5);
    std::uniform_real_distribution<double> coeff(-3.0, 3.0);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    Model m;
    const int n = varCount(*rng);
    for (int v = 0; v < n; ++v) {
        const double lo = unit(*rng) < 0.3 ? coeff(*rng) : 0.0;
        // ~85% finite upper bounds; the rest exercise the infinite path.
        const double span = 0.5 + 4.0 * unit(*rng);
        const double hi = unit(*rng) < 0.85 ? lo + span : kInfinity;
        m.addVariable(coeff(*rng), false, lo, hi);
    }
    const int rows = rowCount(*rng);
    for (int r = 0; r < rows; ++r) {
        Row row;
        for (int v = 0; v < n; ++v) {
            if (unit(*rng) < 0.7) row.coeffs.emplace_back(v, coeff(*rng));
        }
        if (row.coeffs.empty()) row.coeffs.emplace_back(0, 1.0);
        const double pick = unit(*rng);
        row.sense = pick < 0.5 ? Sense::LessEqual
                               : (pick < 0.8 ? Sense::GreaterEqual : Sense::Equal);
        row.rhs = 4.0 * coeff(*rng) / 3.0;
        m.addRow(std::move(row));
    }
    return m;
}

TEST(LpEquivalence, RandomModelsMatchLegacyFormulation) {
    std::mt19937 rng(20260806);
    int optimal = 0;
    for (int trial = 0; trial < 50; ++trial) {
        const Model m = randomModel(&rng);
        const Solution bounded = solveLp(m);
        const Solution legacy = solveLpLegacy(m);
        ASSERT_EQ(bounded.status, legacy.status) << "trial " << trial;
        if (bounded.status == SolveStatus::Optimal) {
            ++optimal;
            EXPECT_NEAR(bounded.objective, legacy.objective, kTol)
                << "trial " << trial;
        }
    }
    // The generator must actually exercise the optimal path, not just
    // churn out infeasible/unbounded models.
    EXPECT_GE(optimal, 10);
}

TEST(LpEquivalence, SelectionModelsMatchLegacyFormulation) {
    // Streak-shaped models: 0/1 selection rows + capacity rows, the exact
    // structure branch-and-bound relaxations have.
    std::mt19937 rng(77);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int trial = 0; trial < 20; ++trial) {
        Model m;
        std::vector<int> vars;
        const int groups = 2 + trial % 3;
        for (int gIdx = 0; gIdx < groups; ++gIdx) {
            Row sel;
            for (int j = 0; j < 3; ++j) {
                const int v =
                    m.addVariable(1.0 + 5.0 * unit(rng), false, 0.0, 1.0);
                vars.push_back(v);
                sel.coeffs.emplace_back(v, 1.0);
            }
            sel.sense = Sense::Equal;
            sel.rhs = 1.0;
            m.addRow(std::move(sel));
        }
        Row cap;
        for (size_t k = 0; k < vars.size(); k += 2) {
            cap.coeffs.emplace_back(vars[k], 1.0);
        }
        cap.sense = Sense::LessEqual;
        cap.rhs = 1.0 + static_cast<double>(groups) / 2.0;
        m.addRow(std::move(cap));

        const Solution bounded = solveLp(m);
        const Solution legacy = solveLpLegacy(m);
        ASSERT_EQ(bounded.status, legacy.status) << "trial " << trial;
        ASSERT_EQ(bounded.status, SolveStatus::Optimal);
        EXPECT_NEAR(bounded.objective, legacy.objective, kTol)
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------------------
// Basis warm starts
// ---------------------------------------------------------------------------

TEST(LpWarmStart, ChildBoundFixingsResolveToColdObjective) {
    // Parent: a selection LP. Children: each variable fixed to 0 / 1 in
    // turn (exactly what branch-and-bound does), re-solved from the
    // parent basis; objective and status must match the cold solve.
    Model parent;
    const int a = parent.addVariable(5.0, true, 0.0, 1.0);
    const int b = parent.addVariable(3.0, true, 0.0, 1.0);
    const int c = parent.addVariable(9.0, true, 0.0, 1.0);
    parent.addRow({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::Equal, 1.0);
    parent.addRow({{a, 1.0}, {c, 1.0}}, Sense::LessEqual, 1.0);

    LpBasis basis;
    LpOptions opts;
    opts.basisOut = &basis;
    const Solution root = solveLp(parent, opts);
    ASSERT_EQ(root.status, SolveStatus::Optimal);
    ASSERT_FALSE(basis.empty());

    for (const int var : {a, b, c}) {
        for (const double fix : {0.0, 1.0}) {
            Model child;
            for (int v = 0; v < parent.numVariables(); ++v) {
                const bool fixed = v == var;
                child.addVariable(parent.objectiveCoeff(v), true,
                                  fixed ? fix : parent.lower(v),
                                  fixed ? fix : parent.upper(v));
            }
            for (const Row& r : parent.rows()) child.addRow(r);

            LpOptions warmOpts;
            warmOpts.warmBasis = &basis;
            const Solution warm = solveLp(child, warmOpts);
            const Solution cold = solveLp(child);
            ASSERT_EQ(warm.status, cold.status)
                << "var " << var << " fixed to " << fix;
            if (cold.status == SolveStatus::Optimal) {
                EXPECT_NEAR(warm.objective, cold.objective, kTol)
                    << "var " << var << " fixed to " << fix;
            }
        }
    }
}

TEST(LpWarmStart, RandomChildrenMatchColdSolves) {
    std::mt19937 rng(4242);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int trial = 0; trial < 25; ++trial) {
        const Model parent = randomModel(&rng);
        LpBasis basis;
        LpOptions opts;
        opts.basisOut = &basis;
        const Solution root = solveLp(parent, opts);
        if (root.status != SolveStatus::Optimal) continue;

        // Child: tighten one finite-bounded variable to one of its ends.
        Model child;
        int target = -1;
        for (int v = 0; v < parent.numVariables(); ++v) {
            if (parent.upper(v) < kInfinity) target = v;
        }
        for (int v = 0; v < parent.numVariables(); ++v) {
            double lo = parent.lower(v);
            double hi = parent.upper(v);
            if (v == target) {
                if (unit(rng) < 0.5) hi = lo;
                else lo = hi;
            }
            child.addVariable(parent.objectiveCoeff(v), false, lo, hi);
        }
        for (const Row& r : parent.rows()) child.addRow(r);

        LpOptions warmOpts;
        warmOpts.warmBasis = &basis;
        const Solution warm = solveLp(child, warmOpts);
        const Solution cold = solveLp(child);
        ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
        if (cold.status == SolveStatus::Optimal) {
            EXPECT_NEAR(warm.objective, cold.objective, kTol)
                << "trial " << trial;
        }
    }
}

TEST(LpWarmStart, GarbageBasisFallsBackToColdSolve) {
    Model m;
    const int x = m.addVariable(-1.0, false, 0.0, 3.0);
    const int y = m.addVariable(-2.0, false, 0.0, 2.0);
    m.addRow({{x, 1.0}, {y, 1.0}}, Sense::LessEqual, 4.0);

    LpBasis junk;
    junk.basic = {999};  // out-of-range column
    LpOptions opts;
    opts.warmBasis = &junk;
    const Solution s = solveLp(m, opts);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, -6.0, kTol);
}

}  // namespace
}  // namespace streak::ilp
