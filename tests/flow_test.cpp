// End-to-end integration tests of the Streak flow on generated designs.
#include <gtest/gtest.h>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

gen::SuiteSpec tinySpec() {
    gen::SuiteSpec s;
    s.name = "tiny";
    s.gridWidth = s.gridHeight = 40;
    s.numLayers = 4;
    s.capacity = 10;
    s.numGroups = 6;
    s.minGroupWidth = 3;
    s.maxGroupWidth = 8;
    s.maxPins = 4;
    s.multipinFraction = 0.5;
    s.numBlockages = 2;
    s.seed = 42;
    return s;
}

TEST(Flow, PrimalDualEndToEnd) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_GT(r.metrics.routability, 0.7);
    EXPECT_EQ(r.metrics.totalOverflow, 0);
    EXPECT_GT(r.metrics.wirelength, 0);
    EXPECT_GE(r.metrics.avgRegularity, 0.0);
    EXPECT_LE(r.metrics.avgRegularity, 1.0);
}

TEST(Flow, IlpEndToEnd) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 30.0;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_GT(r.metrics.routability, 0.7);
    EXPECT_EQ(r.metrics.totalOverflow, 0);
}

TEST(Flow, IlpObjectiveNotWorseThanPd) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;
    const StreakResult pd = runStreak(d, opts).value();
    opts.solver = SolverKind::Ilp;
    opts.ilpTimeLimitSeconds = 60.0;
    const StreakResult ilp = runStreak(d, opts).value();
    if (!ilp.hitTimeLimit) {
        EXPECT_LE(ilp.solverSolution.objective,
                  pd.solverSolution.objective + 1e-6);
    }
}

TEST(Flow, PostOptimizationNeverLowersRoutability) {
    gen::SuiteSpec spec = tinySpec();
    spec.capacity = 5;  // pressure so the solver leaves leftovers
    spec.numBlockages = 8;
    const Design d = gen::generate(spec);
    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;
    const StreakResult base = runStreak(d, opts).value();
    opts.postOptimize = true;
    const StreakResult post = runStreak(d, opts).value();
    EXPECT_GE(post.metrics.routability, base.metrics.routability);
    EXPECT_EQ(post.metrics.totalOverflow, 0);
}

TEST(Flow, RefinementReducesDistanceViolations) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_LE(r.distanceViolationsAfter, r.distanceViolationsBefore);
}

TEST(Flow, SolverSolutionsRespectLowerBound) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_GE(r.solverSolution.objective,
              r.problem.costLowerBound() - 1e-9);
}

TEST(Flow, DeterministicAcrossRuns) {
    const Design d = gen::generate(tinySpec());
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult a = runStreak(d, opts).value();
    const StreakResult b = runStreak(d, opts).value();
    EXPECT_EQ(a.solverSolution.chosen, b.solverSolution.chosen);
    EXPECT_EQ(a.metrics.wirelength, b.metrics.wirelength);
    EXPECT_DOUBLE_EQ(a.metrics.avgRegularity, b.metrics.avgRegularity);
}

TEST(Flow, MetricsConsistentWithRoutedBits) {
    const Design d = gen::generate(tinySpec());
    const StreakResult r = runStreak(d, StreakOptions{}).value();
    EXPECT_EQ(r.metrics.totalBits, d.numNets());
    EXPECT_EQ(r.metrics.routedBits, r.routed.routedBits());
}

}  // namespace
}  // namespace streak
