// Worked examples from the paper's figures, reproduced as tests so the
// implementation provably matches the text.
#include <gtest/gtest.h>

#include "core/identify.hpp"
#include "core/regularity.hpp"
#include "core/similarity.hpp"
#include "core/distance.hpp"
#include "core/pd_solver.hpp"
#include "core/solution.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "route/sequential.hpp"

#include <algorithm>
#include "route/maze.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

using geom::Point;

TEST(PaperExamples, Fig5aDriverSurroundedByEightSinks) {
    // Fig. 5(a): "assume that the driver is in the middle and each X
    // represents a sink, then SV of this driver is {1,1,1,1,1,1,1,1}".
    std::vector<Point> pins{{10, 10}};
    for (const Point off : {Point{4, 0}, Point{3, 3}, Point{0, 4},
                            Point{-3, 3}, Point{-4, 0}, Point{-3, -3},
                            Point{0, -4}, Point{3, -3}}) {
        pins.push_back({10 + off.x, 10 + off.y});
    }
    const Bit bit = testutil::makeBit(pins);
    EXPECT_EQ(pinSimilarity(bit, 0).v,
              (std::array<int, 8>{1, 1, 1, 1, 1, 1, 1, 1}));
}

TEST(PaperExamples, Fig5bDriverWithTwoQuadrantISinks) {
    // Fig. 5(b) middle node: drivers with SV {0,2,0,0,0,0,0,0} — two
    // sinks in quadrant I.
    const Bit bit = testutil::makeBit({{0, 0}, {5, 3}, {8, 7}});
    EXPECT_EQ(pinSimilarity(bit, 0).v,
              (std::array<int, 8>{0, 2, 0, 0, 0, 0, 0, 0}));
    // Same driver SV but different sink SVs can still split objects: a
    // bit whose two QI sinks are stacked vertically is not isomorphic to
    // one whose sinks are staggered horizontally.
    SignalGroup g;
    g.bits.push_back(testutil::makeBit({{0, 0}, {5, 3}, {8, 7}}));
    g.bits.push_back(testutil::makeBit({{0, 10}, {5, 13}, {5, 17}}));
    const auto objects = identifyObjects(g, 0);
    EXPECT_EQ(objects.size(), 2u);
    // Both drivers share the driver-level SV (the stage-1 bucket).
    EXPECT_EQ(pinSimilarity(g.bits[0], 0), pinSimilarity(g.bits[1], 0));
}

TEST(PaperExamples, Fig3aTwoStylesRegularityRatioIsOne) {
    // Fig. 3(a): the bottom object has one more bending point, yet the
    // ratio is 100% because that bend maps to the other object's sink.
    steiner::Topology top({{0, 6}, {8, 6}}, 0);
    top.addSegment({{0, 6}, {8, 6}});
    steiner::Topology bottom({{0, 0}, {8, 3}}, 0);
    bottom.addLShape({0, 0}, {8, 3}, {8, 0});
    EXPECT_DOUBLE_EQ(regularityRatio(top, bottom), 1.0);
}

TEST(PaperExamples, Fig4aEquidistantBusHasNoDeviation) {
    // Fig. 4(a): mapped pins at equal driver distance in every bit.
    const SignalGroup g =
        testutil::makeBusGroup({{2, 2}, {10, 2}, {10, 8}}, 3, 0, 1);
    Design d = testutil::makeDesign({g});
    RoutingProblem prob = buildProblem(d, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);
    const auto reports = analyzeDistances(prob, routed, 0.5);
    EXPECT_EQ(reports[0].maxDeviation, 0);
}

TEST(CapacityRepair, DropsOverloadedObjects) {
    // Two coincident single-bit objects on capacity 1: force both chosen
    // and let the repair un-route one.
    Design d = testutil::makeDesign(
        {testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "a"),
         testutil::makeBusGroup({{4, 4}, {12, 4}}, 1, 0, 1, "b")},
        32, 32, 2, 1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_EQ(prob.numObjects(), 2);
    RoutingSolution sol;
    sol.chosen = {0, 0};
    // Both objects' cheapest candidates share the same row on the same
    // layer only if their layer pair matches; find any pair that clashes.
    const int repaired = makeCapacityFeasible(prob, &sol);
    const RoutedDesign rd = materialize(prob, sol);
    EXPECT_EQ(rd.usage.totalOverflow(), 0);
    if (repaired > 0) {
        EXPECT_EQ(std::count(sol.chosen.begin(), sol.chosen.end(), -1),
                  repaired);
    }
}

TEST(MazeRouter, CountsViasOnLayerChanges) {
    grid::RoutingGrid g(12, 12, 2, 4);
    grid::EdgeUsage usage(g);
    route::MazeRouter router(&usage);
    // Diagonal connection must use both layer directions -> >= 1 via.
    const auto net = router.route({{2, 2}, {8, 8}}, 0);
    ASSERT_TRUE(net.has_value());
    EXPECT_GE(net->viaCount, 1);
    EXPECT_EQ(net->wirelength2d, 12);
}

TEST(Table1Invariant, ManualAlwaysAtLeastStreakRoutability) {
    // On every suite the sequential baseline (maze fallback) routes at
    // least as many bits as the capacity-strict object-level selection.
    for (const int i : {1, 6}) {
        const Design d = gen::makeSynth(i);
        const route::SequentialResult man = route::routeSequential(d);
        StreakOptions opts;
        const StreakResult r = runStreak(d, opts).value();
        EXPECT_GE(man.routability() + 1e-12, r.metrics.routability)
            << "synth" << i;
    }
}

}  // namespace
}  // namespace streak
