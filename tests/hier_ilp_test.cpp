#include "core/hier_ilp.hpp"

#include <gtest/gtest.h>

#include "core/pd_solver.hpp"
#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "test_util.hpp"

namespace streak {
namespace {

Design twoGroupDesign() {
    return testutil::makeDesign(
        {testutil::makeBusGroup({{2, 4}, {12, 4}}, 4, 0, 1, "a"),
         testutil::makeBusGroup({{4, 20}, {14, 20}, {14, 26}}, 3, 0, 1, "b")},
        32, 32, 4, 10);
}

TEST(FilterProblem, KeepsSelectedCandidatesInOrder) {
    const Design d = twoGroupDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    std::vector<std::vector<int>> keep(prob.candidates.size());
    for (size_t i = 0; i < prob.candidates.size(); ++i) {
        keep[i] = {0};
        if (prob.candidates[i].size() > 2) keep[i].push_back(2);
    }
    const FilteredProblem f = filterProblem(prob, keep);
    for (size_t i = 0; i < f.prob.candidates.size(); ++i) {
        ASSERT_EQ(f.prob.candidates[i].size(), keep[i].size());
        for (size_t j = 0; j < keep[i].size(); ++j) {
            EXPECT_EQ(f.prob.candidates[i][j].cost,
                      prob.candidates[i][static_cast<size_t>(keep[i][j])].cost);
            EXPECT_EQ(f.toOriginal[i][j], keep[i][j]);
        }
    }
}

TEST(FilterProblem, PairBlocksSliced) {
    Design d = twoGroupDesign();
    // Force two objects in group 0 so a pair block exists.
    d.groups[0].bits[2].pins[1] = {12, 4 + 2 + 6};
    d.groups[0].bits[3].pins[1] = {12, 4 + 3 + 6};
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_FALSE(prob.pairBlocks.empty());
    std::vector<std::vector<int>> keep(prob.candidates.size());
    for (size_t i = 0; i < prob.candidates.size(); ++i) keep[i] = {0};
    const FilteredProblem f = filterProblem(prob, keep);
    ASSERT_EQ(f.prob.pairBlocks.size(), prob.pairBlocks.size());
    for (size_t b = 0; b < f.prob.pairBlocks.size(); ++b) {
        ASSERT_EQ(f.prob.pairBlocks[b].cost.size(), 1u);
        ASSERT_EQ(f.prob.pairBlocks[b].cost[0].size(), 1u);
        EXPECT_EQ(f.prob.pairBlocks[b].cost[0][0],
                  prob.pairBlocks[b].cost[0][0]);
    }
}

TEST(FilterProblem, EmptyKeepListsYieldEmptyCandidateSets) {
    Design d = twoGroupDesign();
    d.groups[0].bits[2].pins[1] = {12, 4 + 2 + 6};
    d.groups[0].bits[3].pins[1] = {12, 4 + 3 + 6};
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_FALSE(prob.pairBlocks.empty());
    // Keep nothing anywhere: every candidate list collapses to empty and
    // pair blocks with an empty side are dropped outright (an empty cost
    // matrix would be dead weight in the stage ILPs).
    const std::vector<std::vector<int>> keep(prob.candidates.size());
    const FilteredProblem f = filterProblem(prob, keep);
    ASSERT_EQ(f.prob.candidates.size(), prob.candidates.size());
    for (const auto& cands : f.prob.candidates) EXPECT_TRUE(cands.empty());
    for (const auto& orig : f.toOriginal) EXPECT_TRUE(orig.empty());
    EXPECT_TRUE(f.prob.pairBlocks.empty());
    for (const auto& pairs : f.prob.pairsOf) EXPECT_TRUE(pairs.empty());
}

TEST(FilterProblem, MixedEmptyAndFullKeepLists) {
    const Design d = twoGroupDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    ASSERT_GE(prob.numObjects(), 2);
    // Object 0 keeps everything, the rest keep nothing.
    std::vector<std::vector<int>> keep(prob.candidates.size());
    keep[0].resize(prob.candidates[0].size());
    for (size_t j = 0; j < keep[0].size(); ++j) {
        keep[0][j] = static_cast<int>(j);
    }
    const FilteredProblem f = filterProblem(prob, keep);
    EXPECT_EQ(f.prob.candidates[0].size(), prob.candidates[0].size());
    for (size_t i = 1; i < f.prob.candidates.size(); ++i) {
        EXPECT_TRUE(f.prob.candidates[i].empty());
    }
}

TEST(FilterProblem, ToOriginalRoundTripsCandidates) {
    const Design d = twoGroupDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    // Keep every second candidate, in order.
    std::vector<std::vector<int>> keep(prob.candidates.size());
    for (size_t i = 0; i < prob.candidates.size(); ++i) {
        for (size_t j = 0; j < prob.candidates[i].size(); j += 2) {
            keep[i].push_back(static_cast<int>(j));
        }
    }
    const FilteredProblem f = filterProblem(prob, keep);
    for (size_t i = 0; i < f.prob.candidates.size(); ++i) {
        ASSERT_EQ(f.toOriginal[i].size(), f.prob.candidates[i].size());
        for (size_t j = 0; j < f.prob.candidates[i].size(); ++j) {
            // The mapped-back original candidate is the filtered one.
            const int orig = f.toOriginal[i][j];
            const RouteCandidate& a = f.prob.candidates[i][j];
            const RouteCandidate& b =
                prob.candidates[i][static_cast<size_t>(orig)];
            EXPECT_EQ(a.cost, b.cost);
            EXPECT_EQ(a.hLayer, b.hLayer);
            EXPECT_EQ(a.vLayer, b.vLayer);
        }
    }
}

TEST(HierIlp, MatchesFlatIlpOnEasyDesign) {
    const Design d = twoGroupDesign();
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult flat = solveIlpRouting(prob, 30.0);
    const IlpRouteResult hier = solveIlpHierarchical(prob, 30.0);
    ASSERT_FALSE(flat.hitTimeLimit);
    ASSERT_FALSE(hier.hitTimeLimit);
    // The hierarchy restricts stage 2 to stage 1's backbone, so it can be
    // slightly worse — but never better than the exact optimum and never
    // worse than leaving objects unrouted.
    EXPECT_GE(hier.solution.objective, flat.solution.objective - 1e-6);
    for (const int c : hier.solution.chosen) EXPECT_GE(c, 0);
}

TEST(HierIlp, NeverWorseThanWarmStart) {
    const Design d = gen::makeSynth(1);
    StreakOptions opts;
    const RoutingProblem prob = buildProblem(d, opts);
    const PdResult pd = solvePrimalDual(prob);
    const IlpRouteResult hier =
        solveIlpHierarchical(prob, 10.0, &pd.solution);
    EXPECT_LE(hier.solution.objective, pd.solution.objective + 1e-6);
}

TEST(HierIlp, SolutionRespectsCapacities) {
    const Design d = gen::makeSynth(1);
    const RoutingProblem prob = buildProblem(d, StreakOptions{});
    const IlpRouteResult hier = solveIlpHierarchical(prob, 10.0);
    const RoutedDesign rd = materialize(prob, hier.solution);
    EXPECT_EQ(rd.usage.totalOverflow(), 0);
}

TEST(HierIlp, FlowIntegration) {
    const Design d = gen::makeSynth(1);
    StreakOptions opts;
    opts.solver = SolverKind::IlpHierarchical;
    opts.ilpTimeLimitSeconds = 10.0;
    const StreakResult r = runStreak(d, opts).value();
    EXPECT_GT(r.metrics.routability, 0.9);
    EXPECT_EQ(r.metrics.totalOverflow, 0);
}

}  // namespace
}  // namespace streak
