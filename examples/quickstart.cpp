// Quickstart: build a small design by hand, run the full Streak flow and
// inspect the result.
//
//   $ ./quickstart
//
// Walks through the public API end to end: Design construction, options,
// runStreak(), metrics and per-bit routes.
#include <iostream>

#include "flow/streak.hpp"
#include "io/heatmap.hpp"

int main() {
    using namespace streak;

    // A 32x32 G-Cell die with 4 uni-directional metal layers and 8 tracks
    // per G-Cell edge.
    Design design{"quickstart", grid::RoutingGrid(32, 32, 4, 8), {}};

    // One 6-bit signal group: drivers on adjacent vertical tracks, every
    // bit driving one sink 12 G-Cells to the east (a classic bus), plus
    // two bits whose sinks also rise north (a second routing style).
    SignalGroup bus;
    bus.name = "data_bus";
    for (int k = 0; k < 6; ++k) {
        Bit bit;
        bit.name = "data[" + std::to_string(k) + "]";
        bit.driver = 0;
        bit.pins.push_back({4, 8 + k});         // driver
        if (k < 4) {
            bit.pins.push_back({16, 8 + k});    // straight east sink
        } else {
            bit.pins.push_back({16, 14 + k});   // east + north sink
        }
        bus.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(bus));

    // Route with the primal-dual engine and full post optimization.
    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;
    opts.postOptimize = true;
    const StreakResult result = runStreak(design, opts).value();

    std::cout << "routed " << result.metrics.routedBits << "/"
              << result.metrics.totalBits << " bits, wire-length "
              << result.metrics.wirelength << ", Avg(Reg) "
              << result.metrics.avgRegularity << ", overflow "
              << result.metrics.totalOverflow << "\n\n";

    // The identification stage split the group into routing objects:
    std::cout << "routing objects:\n";
    for (const RoutingObject& obj : result.problem.objects) {
        std::cout << "  object of " << obj.width() << " bit(s)\n";
    }

    // Every routed bit carries its concrete topology and trunk layers.
    std::cout << "\nper-bit routes:\n";
    for (const RoutedBit& bit : result.routed.bits) {
        const Bit& src = design.groups[static_cast<size_t>(bit.groupIndex)]
                             .bits[static_cast<size_t>(bit.bitIndex)];
        std::cout << "  " << src.name << ": wl=" << bit.topo.wirelength()
                  << " bends=" << bit.topo.bendCount() << " H-layer M"
                  << bit.hLayer + 1 << " V-layer M" << bit.vLayer + 1 << "\n";
    }

    std::cout << "\ncongestion map:\n";
    io::writeAsciiHeatmap(result.routed.usage, std::cout, 48);
    return 0;
}
