// Domain example: working with design files.
//
// Generates a Table-I-style suite, saves it in the STREAK text format,
// reloads it, routes the reloaded copy, and writes the congestion map as
// CSV — the batch workflow for running Streak on external designs:
//
//   $ ./design_files out_dir
#include <filesystem>
#include <fstream>
#include <iostream>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/design_io.hpp"
#include "io/heatmap.hpp"

int main(int argc, char** argv) {
    using namespace streak;
    const std::filesystem::path dir = argc > 1 ? argv[1] : "design_files_out";
    std::filesystem::create_directories(dir);

    // Generate and persist a benchmark.
    const Design original = gen::makeSynth(1);
    const std::string designPath = (dir / "synth1.streak").string();
    io::writeDesignFile(original, designPath);
    std::cout << "wrote " << designPath << "\n";

    // Reload and route the persisted copy.
    const Design loaded = io::readDesignFile(designPath);
    std::cout << "reloaded: " << loaded.numGroups() << " groups, "
              << loaded.numNets() << " nets, grid " << loaded.grid.width()
              << "x" << loaded.grid.height() << "x" << loaded.grid.numLayers()
              << "\n";

    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(loaded, opts).value();
    std::cout << "routability " << r.metrics.routability * 100.0
              << "%, wire-length " << r.metrics.wirelength << "\n";

    // Export the congestion map for plotting.
    const std::string csvPath = (dir / "congestion.csv").string();
    std::ofstream csv(csvPath);
    io::writeCsvHeatmap(r.routed.usage, csv);
    std::cout << "wrote " << csvPath << "\n";
    return 0;
}
