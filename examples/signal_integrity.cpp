// Domain example: signal-integrity sign-off of a routed group.
//
// Routes a group whose bits have mismatched sink distances, reports the
// interbit Elmore delay skew before and after the distance-refinement
// stage, and writes an SVG of the final routes:
//
//   $ ./signal_integrity [out.svg]
#include <fstream>
#include <iostream>

#include "core/pd_solver.hpp"
#include "io/svg.hpp"
#include "io/table.hpp"
#include "post/refine.hpp"
#include "timing/skew.hpp"

int main(int argc, char** argv) {
    using namespace streak;

    // A 6-bit group; two bits have much shorter sinks (Fig. 4(b)).
    Design design{"si_demo", grid::RoutingGrid(40, 40, 4, 8), {}};
    SignalGroup g;
    g.name = "lane";
    for (int k = 0; k < 6; ++k) {
        Bit bit;
        bit.name = "lane[" + std::to_string(k) + "]";
        bit.driver = 0;
        bit.pins.push_back({4, 10 + k});
        const int reach = k < 4 ? 28 : 12;  // two short bits
        bit.pins.push_back({4 + reach, 10 + k});
        g.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(g));

    RoutingProblem prob = buildProblem(design, StreakOptions{});
    RoutedDesign routed = materialize(prob, solvePrimalDual(prob).solution);

    timing::ElmoreParameters rc;  // default unit RC model
    const auto before = timing::analyzeGroupSkew(prob, routed, rc);
    const post::RefinementResult ref = post::refineDistances(prob, &routed);
    const auto after = timing::analyzeGroupSkew(prob, routed, rc);

    io::Table t({"stage", "max family skew", "max delay", "Vio(dst)"});
    t.addRow({"as routed", io::Table::fixed(before[0].maxFamilySkew, 1),
              io::Table::fixed(before[0].maxDelay, 1),
              std::to_string(ref.violatingGroupsBefore)});
    t.addRow({"after refinement", io::Table::fixed(after[0].maxFamilySkew, 1),
              io::Table::fixed(after[0].maxDelay, 1),
              std::to_string(ref.violatingGroupsAfter)});
    t.print(std::cout);
    std::cout << "detours inserted: " << ref.pinsFixed << " (+"
              << ref.addedWirelength << " wire)\n";

    const char* path = argc > 1 ? argv[1] : "signal_integrity.svg";
    std::ofstream os(path);
    io::writeSvg(routed, os);
    std::cout << "wrote " << path << '\n';
    return 0;
}
