// Domain example: routing the performance-critical signal groups of a
// small datapath slice (the Fig. 1 scenario of the paper).
//
// A synthetic CPU datapath: a 16-bit operand bus from the register file
// to the ALU, an 8-bit control word that fans out to two units (two
// routing styles in one group), and a 12-bit writeback bus crossing them.
// The example compares the bit-by-bit baseline router against Streak on
// the same design and prints the regularity each achieves.
#include <iostream>

#include "flow/streak.hpp"
#include "io/table.hpp"
#include "route/sequential.hpp"

namespace {

streak::SignalGroup bus(const std::string& name, streak::geom::Point from,
                        streak::geom::Point to, int width, bool vertical) {
    streak::SignalGroup g;
    g.name = name;
    for (int k = 0; k < width; ++k) {
        streak::Bit bit;
        bit.name = name + "[" + std::to_string(k) + "]";
        bit.driver = 0;
        const int dx = vertical ? 1 : 0;
        const int dy = vertical ? 0 : 1;
        bit.pins.push_back({from.x + k * dx, from.y + k * dy});
        bit.pins.push_back({to.x + k * dx, to.y + k * dy});
        g.bits.push_back(std::move(bit));
    }
    return g;
}

}  // namespace

int main() {
    using namespace streak;
    Design design{"datapath", grid::RoutingGrid(48, 48, 6, 10), {}};

    // Register file (west) -> ALU (east): 16-bit operand bus.
    design.groups.push_back(bus("operand", {6, 12}, {34, 12}, 16, false));

    // Decoder (south) -> ALU and LSU: 8-bit control word with two styles.
    SignalGroup control;
    control.name = "control";
    for (int k = 0; k < 8; ++k) {
        Bit bit;
        bit.name = "ctl[" + std::to_string(k) + "]";
        bit.driver = 0;
        bit.pins.push_back({12 + k, 6});
        if (k < 4) {
            bit.pins.push_back({12 + k, 30});  // to the ALU
        } else {
            bit.pins.push_back({24 + k, 30});  // to the LSU, bending east
        }
        control.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(control));

    // ALU (east) -> register file (west): 12-bit writeback bus, crossing
    // the operand bus corridor.
    design.groups.push_back(bus("writeback", {34, 20}, {6, 20}, 12, false));

    // Baseline: classic sequential bit-by-bit routing.
    const route::SequentialResult baseline = route::routeSequential(design);

    // Streak: synergistic topology selection + post optimization.
    StreakOptions opts;
    opts.postOptimize = true;
    const StreakResult r = runStreak(design, opts).value();

    io::Table table({"router", "routed", "wire-length", "Avg(Reg)"});
    table.addRow({"sequential baseline",
                  io::Table::percent(baseline.routability()),
                  std::to_string(baseline.wirelength), "(n/a)"});
    table.addRow({"Streak", io::Table::percent(r.metrics.routability),
                  std::to_string(r.metrics.wirelength),
                  io::Table::percent(r.metrics.avgRegularity)});
    table.print(std::cout);

    std::cout << "\ngroup details (Streak):\n";
    for (size_t g = 0; g < design.groups.size(); ++g) {
        int objects = 0;
        for (const RoutingObject& obj : r.problem.objects) {
            if (obj.groupIndex == static_cast<int>(g)) ++objects;
        }
        std::cout << "  " << design.groups[g].name << ": "
                  << design.groups[g].width() << " bits in " << objects
                  << " routing object(s)\n";
    }
    return 0;
}
