// Domain example: a congested routing fabric with macro blockages.
//
// Generates a blocked design (macros eat most tracks of the lower
// layers), routes it with and without the post-optimization stage, and
// shows how layer prediction + bottom-up clustering recover bits the
// object-level selection had to give up — the Sec. IV scenario of the
// paper (Fig. 7).
#include <iostream>

#include "flow/streak.hpp"
#include "gen/generator.hpp"
#include "io/heatmap.hpp"
#include "io/table.hpp"

int main() {
    using namespace streak;

    gen::SuiteSpec spec;
    spec.name = "fabric";
    spec.gridWidth = spec.gridHeight = 48;
    spec.numLayers = 4;
    spec.capacity = 6;
    spec.numGroups = 14;
    spec.minGroupWidth = 6;
    spec.maxGroupWidth = 16;
    spec.maxPins = 5;
    spec.multipinFraction = 0.5;
    spec.numBlockages = 0;  // macros placed by hand below
    spec.seed = 7;
    Design design = gen::generate(spec);

    // Two macros blocking nearly all tracks of the bottom layer pair.
    design.grid.addBlockage({{10, 10}, {22, 20}}, 0, 1);
    design.grid.addBlockage({{10, 10}, {22, 20}}, 1, 1);
    design.grid.addBlockage({{28, 24}, {40, 36}}, 0, 0);
    design.grid.addBlockage({{28, 24}, {40, 36}}, 1, 0);

    StreakOptions opts;
    opts.solver = SolverKind::PrimalDual;

    opts.postOptimize = false;
    const StreakResult plain = runStreak(design, opts).value();
    opts.postOptimize = true;
    const StreakResult post = runStreak(design, opts).value();

    io::Table table({"flow", "routed bits", "routability", "wire-length",
                     "Avg(Reg)", "Vio(dst)"});
    table.addRow({"selection only",
                  std::to_string(plain.metrics.routedBits),
                  io::Table::percent(plain.metrics.routability),
                  std::to_string(plain.metrics.wirelength),
                  io::Table::percent(plain.metrics.avgRegularity),
                  std::to_string(plain.distanceViolationsBefore)});
    table.addRow({"+ post optimization",
                  std::to_string(post.metrics.routedBits),
                  io::Table::percent(post.metrics.routability),
                  std::to_string(post.metrics.wirelength),
                  io::Table::percent(post.metrics.avgRegularity),
                  std::to_string(post.distanceViolationsAfter)});
    table.print(std::cout);

    std::cout << "\ncongestion after post optimization (macros visible as "
                 "voids):\n";
    io::writeAsciiHeatmap(post.routed.usage, std::cout, 48);
    std::cout << "total overflow: " << post.metrics.totalOverflow << "\n";
    return 0;
}
